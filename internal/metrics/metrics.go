// Package metrics records what the paper's evaluation section measures: the
// per-superstep phase breakdown (PRS / CMP / SND / SYN of Figure 10(1)),
// active-vertex and message counts (Figures 10(2), 10(3)), redundant-message
// ratios (Figure 3(2)), and a deterministic cost model that converts those
// counts into a modelled execution time so the speedup *shapes* of Figures 9,
// 11(3) and 12 reproduce even on hosts with few cores.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Phase indexes the four per-superstep phases of §3.5.
type Phase int

const (
	// Parse is message parsing (PRS): draining queues and grouping messages
	// per destination vertex. Cyclops has no parse phase — receivers apply
	// sync messages directly.
	Parse Phase = iota
	// Compute is vertex computation (CMP).
	Compute
	// Send is message sending (SND), including serialisation and enqueueing.
	Send
	// Sync is the global barrier (SYN).
	Sync

	numPhases
)

// String implements fmt.Stringer with the paper's labels.
func (p Phase) String() string {
	switch p {
	case Parse:
		return "PRS"
	case Compute:
		return "CMP"
	case Send:
		return "SND"
	case Sync:
		return "SYN"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// StepStats aggregates one superstep.
type StepStats struct {
	Step int
	// Active is the number of vertices that executed compute this superstep.
	Active int64
	// Changed is how many computed vertices changed their value (needs the
	// engine's Equal hook; equals Active when the hook is absent).
	Changed int64
	// Messages is the number of data messages sent this superstep.
	Messages int64
	// RedundantMessages counts messages sent by vertices whose value did not
	// change — the wasted traffic of Figure 3(2).
	RedundantMessages int64
	// ComputeUnitsMax is the max over workers of edges scanned in compute;
	// the critical path of the CMP phase.
	ComputeUnitsMax int64
	// SendMax / RecvMax are the max over workers of messages sent/received.
	SendMax int64
	RecvMax int64
	// ResidualN, ResidualP50, ResidualP90 and ResidualMax summarise the
	// distribution of per-vertex residuals (|Δvalue| as defined by the
	// engine's Residual hook) over the vertices that published this
	// superstep — the convergence telemetry of Figure 3: the residual
	// quantiles show *how far* the computation still is from its fixpoint,
	// not just how many vertices moved. All zero when no Residual hook is
	// configured.
	ResidualN   int64
	ResidualP50 float64
	ResidualP90 float64
	ResidualMax float64
	// Durations records wall time per phase.
	Durations [numPhases]time.Duration
	// ModelNanos is the engine's cost-model estimate for this superstep.
	ModelNanos float64
}

// RedundantRatio is the share of this superstep's messages sent by vertices
// whose value did not change (Figure 3(2)); zero when nothing was sent.
func (s StepStats) RedundantRatio() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.RedundantMessages) / float64(s.Messages)
}

// SetResiduals folds a sample set of per-vertex residuals into the stats.
// It sorts samples in place; non-finite values (an SSSP vertex leaving its
// +Inf initial distance, a NaN from a degenerate update) are ignored so the
// quantiles stay meaningful and serialisable.
func (s *StepStats) SetResiduals(samples []float64) {
	s.ResidualN, s.ResidualP50, s.ResidualP90, s.ResidualMax = SummarizeResiduals(samples)
}

// SummarizeResiduals reports the count, median, 90th percentile
// (nearest-rank) and maximum of the finite values in samples, sorting the
// slice in place. Everything is zero for an empty (or all-non-finite) set.
func SummarizeResiduals(samples []float64) (n int64, p50, p90, max float64) {
	finite := samples[:0]
	for _, x := range samples {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	if len(finite) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(finite)
	rank := func(q float64) float64 {
		// Nearest-rank quantile: ceil(q*n) clamped into [1, n].
		r := int(math.Ceil(q * float64(len(finite))))
		if r < 1 {
			r = 1
		}
		return finite[r-1]
	}
	return int64(len(finite)), rank(0.50), rank(0.90), finite[len(finite)-1]
}

// Trace collects a full run.
type Trace struct {
	Engine  string
	Workers int
	Steps   []StepStats
}

// Append adds one superstep record.
func (t *Trace) Append(s StepStats) { t.Steps = append(t.Steps, s) }

// TotalDuration sums wall time across phases and supersteps.
func (t *Trace) TotalDuration() time.Duration {
	var total time.Duration
	for _, s := range t.Steps {
		for _, d := range s.Durations {
			total += d
		}
	}
	return total
}

// ModelTime sums the cost-model estimates (nanoseconds).
func (t *Trace) ModelTime() float64 {
	var total float64
	for _, s := range t.Steps {
		total += s.ModelNanos
	}
	return total
}

// TotalMessages sums messages across supersteps.
func (t *Trace) TotalMessages() int64 {
	var total int64
	for _, s := range t.Steps {
		total += s.Messages
	}
	return total
}

// PhaseTotals sums wall time per phase.
func (t *Trace) PhaseTotals() [4]time.Duration {
	var totals [4]time.Duration
	for _, s := range t.Steps {
		for p, d := range s.Durations {
			totals[p] += d
		}
	}
	return totals
}

// PhaseRatios returns each phase's share of total wall time.
func (t *Trace) PhaseRatios() [4]float64 {
	totals := t.PhaseTotals()
	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	var ratios [4]float64
	if sum == 0 {
		return ratios
	}
	for p, d := range totals {
		ratios[p] = float64(d) / float64(sum)
	}
	return ratios
}

// String renders a compact multi-line summary for logs and the CLI,
// including the phase breakdown of Figure 10(1).
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d workers, %d supersteps, %d msgs, wall %v, model %.2fms",
		t.Engine, t.Workers, len(t.Steps), t.TotalMessages(),
		t.TotalDuration().Round(time.Microsecond), t.ModelTime()/1e6)
	ratios := t.PhaseRatios()
	b.WriteString("\n  phases:")
	for p := Phase(0); p < numPhases; p++ {
		fmt.Fprintf(&b, " %s %.1f%%", p, ratios[p]*100)
	}
	return b.String()
}
