package metrics

import "math"

// CostModel converts per-superstep counts into a modelled superstep time in
// nanoseconds. The constants encode the *ratios* measured by the
// calibration benchmarks in bench_test.go (BenchmarkCalibrate*: direct
// apply ≪ parse < send per message, ~1-2 ns per scanned edge on the
// reference host), scaled up to include the serialisation and wire costs a
// real cluster pays on top of the raw memory operations. The ratios are
// what give Figures 9/11/12 their shape:
//
//   - parsing a message through a locked global queue costs more than
//     applying a Cyclops sync update (serialisation + lock + grouping);
//   - the barrier cost grows with the number of flat participants, while
//     CyclopsMT's hierarchical barrier only pays the machine count at the
//     global level (§5, Figure 12);
//   - compute parallelises across the threads a worker actually has.
type CostModel struct {
	// ComputeUnit is ns per edge scanned in the compute phase.
	ComputeUnit float64
	// SendMsg is ns per message on the sender side (serialise + enqueue).
	SendMsg float64
	// ParseMsg is ns per message on the receive side for queue-and-parse
	// engines (dequeue + decode + group).
	ParseMsg float64
	// ApplyMsg is ns per message for direct-update receivers (Cyclops).
	ApplyMsg float64
	// LockPenalty is extra ns per batch that crosses a contended global
	// queue; it is multiplied by the number of concurrent senders.
	LockPenalty float64
	// BarrierUnit is ns per participant-level of a barrier; a flat barrier
	// over n workers costs BarrierUnit·log2(n)·n, a hierarchical one costs
	// the machine term plus a cheap thread term.
	BarrierUnit float64
	// ThreadBarrierUnit is ns per thread-level of a local (shared-memory)
	// barrier.
	ThreadBarrierUnit float64
	// ReceiverContention is ns per superstep per pair of receiver threads:
	// §6.5 observes that too many message receivers contend on the CPU and
	// the NIC, which is why the paper's best configuration uses only 2
	// receivers out of 8 threads. Modelled as quadratic in the receiver
	// count (R·(R−1) pairs).
	ReceiverContention float64
}

// DefaultCostModel returns constants calibrated to the reference host.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputeUnit:        6,
		SendMsg:            55,
		ParseMsg:           120,
		ApplyMsg:           25,
		LockPenalty:        600,
		BarrierUnit:        4000,
		ThreadBarrierUnit:  400,
		ReceiverContention: 8000,
	}
}

// log2 clamps at 1 so singleton barriers still cost one unit.
func log2(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// FlatBarrier models one global barrier over n participants.
func (m CostModel) FlatBarrier(n int) float64 {
	return m.BarrierUnit * log2(n) * float64(n)
}

// HierarchicalBarrier models CyclopsMT's barrier: threads meet on a local
// shared-memory barrier, one delegate per machine enters the global barrier.
func (m CostModel) HierarchicalBarrier(machines, threads int) float64 {
	return m.BarrierUnit*log2(machines)*float64(machines) +
		m.ThreadBarrierUnit*log2(threads)*float64(threads)
}

// Breakdown is a superstep's modelled time split by phase (ns), mirroring
// the CMP / SND / PRS / SYN bars of Figures 10(1) and 12.
type Breakdown struct {
	Compute float64
	Send    float64
	Parse   float64
	Sync    float64
}

// Total sums the phases.
func (b Breakdown) Total() float64 { return b.Compute + b.Send + b.Parse + b.Sync }

// StepCostParts models one superstep phase by phase. computeUnits /
// sendMsgs / recvMsgs are the per-worker maxima (critical path), threads is
// the compute parallelism inside a worker, receivers the receive
// parallelism, globalQueue selects the queue-and-parse receive path with
// lock contention from `senders` concurrent senders, and barrier is the
// already-computed barrier term.
func (m CostModel) StepCostParts(computeUnits, sendMsgs, recvMsgs int64,
	threads, receivers, senders int, globalQueue bool, barrier float64) Breakdown {

	if threads < 1 {
		threads = 1
	}
	if receivers < 1 {
		receivers = 1
	}
	b := Breakdown{
		Compute: m.ComputeUnit * float64(computeUnits) / float64(threads),
		Send:    m.SendMsg * float64(sendMsgs),
		Sync:    barrier,
	}
	if globalQueue {
		// Parsing is single-threaded per worker in Hama, and enqueues from
		// `senders` workers serialise on the receiver's lock.
		b.Parse = m.ParseMsg*float64(recvMsgs) +
			m.LockPenalty*float64(senders)*log2(senders)
	} else {
		b.Parse = m.ApplyMsg*float64(recvMsgs)/float64(receivers) +
			m.ReceiverContention*float64(receivers*(receivers-1))
	}
	return b
}

// StepCost is the scalar total of StepCostParts.
func (m CostModel) StepCost(computeUnits, sendMsgs, recvMsgs int64,
	threads, receivers, senders int, globalQueue bool, barrier float64) float64 {
	return m.StepCostParts(computeUnits, sendMsgs, recvMsgs,
		threads, receivers, senders, globalQueue, barrier).Total()
}
