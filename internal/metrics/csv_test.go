package metrics

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
	"time"
)

func sampleTrace(engine string, steps int) *Trace {
	t := &Trace{Engine: engine, Workers: 48}
	for i := 0; i < steps; i++ {
		s := StepStats{
			Step:              i,
			Active:            int64(1000 - 10*i),
			Changed:           int64(900 - 10*i),
			Messages:          int64(5000 - 100*i),
			RedundantMessages: int64(40 * i),
			ComputeUnitsMax:   int64(777 + i),
			SendMax:           int64(120 + i),
			RecvMax:           int64(110 + i),
			ResidualN:         int64(1000 - 10*i),
			ResidualP50:       0.5 / float64(i+1),
			ResidualP90:       0.9 / float64(i+1),
			ResidualMax:       1.0 / float64(i+1),
			ModelNanos:        1.5e6,
		}
		s.Durations[Parse] = 2 * time.Millisecond
		s.Durations[Compute] = 7 * time.Millisecond
		s.Durations[Send] = 3 * time.Millisecond
		s.Durations[Sync] = time.Millisecond
		t.Steps = append(t.Steps, s)
	}
	return t
}

// TestWriteCSVRoundTrip re-parses WriteCSV output and checks the header is
// the stable exported column set and every superstep became one row with the
// values it was given.
func TestWriteCSVRoundTrip(t *testing.T) {
	tr := sampleTrace("cyclops", 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}

	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 1+len(tr.Steps) {
		t.Fatalf("got %d rows, want header + %d steps", len(rows), len(tr.Steps))
	}
	if len(rows[0]) != len(CSVHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(CSVHeader))
	}
	for i, col := range CSVHeader {
		if rows[0][i] != col {
			t.Errorf("header[%d] = %q, want %q (CSVHeader is stable API)", i, rows[0][i], col)
		}
	}

	col := func(name string) int {
		for i, c := range CSVHeader {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	for i, row := range rows[1:] {
		s := tr.Steps[i]
		checks := map[string]string{
			"engine":             tr.Engine,
			"workers":            strconv.Itoa(tr.Workers),
			"step":               strconv.Itoa(s.Step),
			"active":             strconv.FormatInt(s.Active, 10),
			"changed":            strconv.FormatInt(s.Changed, 10),
			"messages":           strconv.FormatInt(s.Messages, 10),
			"redundant_messages": strconv.FormatInt(s.RedundantMessages, 10),
			"compute_units_max":  strconv.FormatInt(s.ComputeUnitsMax, 10),
			"send_max":           strconv.FormatInt(s.SendMax, 10),
			"recv_max":           strconv.FormatInt(s.RecvMax, 10),
			"residual_n":         strconv.FormatInt(s.ResidualN, 10),
			"residual_p50":       strconv.FormatFloat(s.ResidualP50, 'g', -1, 64),
			"residual_p90":       strconv.FormatFloat(s.ResidualP90, 'g', -1, 64),
			"residual_max":       strconv.FormatFloat(s.ResidualMax, 'g', -1, 64),
			"prs_ns":             "2000000",
			"cmp_ns":             "7000000",
			"snd_ns":             "3000000",
			"syn_ns":             "1000000",
			"model_ns":           "1500000",
		}
		for name, want := range checks {
			if got := row[col(name)]; got != want {
				t.Errorf("row %d column %s = %q, want %q", i, name, got, want)
			}
		}
	}
}

// TestWriteCSVAllMultiTrace checks several runs share one header and the
// engine column tells them apart.
func TestWriteCSVAllMultiTrace(t *testing.T) {
	a := sampleTrace("hama", 3)
	b := sampleTrace("cyclops", 4)
	var buf bytes.Buffer
	if err := WriteCSVAll(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 1+3+4 {
		t.Fatalf("got %d rows, want 1 header + 7 steps", len(rows))
	}
	engines := make(map[string]int)
	for _, row := range rows[1:] {
		engines[row[0]]++
	}
	if engines["hama"] != 3 || engines["cyclops"] != 4 {
		t.Fatalf("engine column split = %v, want hama:3 cyclops:4", engines)
	}
}

// TestWriteCSVAllEmpty keeps the header-only case valid.
func TestWriteCSVAllEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVAll(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(rows) != 1 {
		t.Fatalf("want exactly the header row, got %d rows (err %v)", len(rows), err)
	}
}
