package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{Parse: "PRS", Compute: "CMP", Send: "SND", Sync: "SYN"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestTraceTotals(t *testing.T) {
	tr := &Trace{Engine: "test", Workers: 4}
	tr.Append(StepStats{
		Step: 0, Active: 10, Messages: 100,
		Durations:  [4]time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond},
		ModelNanos: 500,
	})
	tr.Append(StepStats{
		Step: 1, Active: 5, Messages: 50,
		Durations:  [4]time.Duration{1 * time.Millisecond, 1 * time.Millisecond, 1 * time.Millisecond, 1 * time.Millisecond},
		ModelNanos: 250,
	})
	if tr.TotalMessages() != 150 {
		t.Errorf("TotalMessages = %d", tr.TotalMessages())
	}
	if tr.TotalDuration() != 14*time.Millisecond {
		t.Errorf("TotalDuration = %v", tr.TotalDuration())
	}
	if tr.ModelTime() != 750 {
		t.Errorf("ModelTime = %g", tr.ModelTime())
	}
	totals := tr.PhaseTotals()
	if totals[Parse] != 2*time.Millisecond || totals[Sync] != 5*time.Millisecond {
		t.Errorf("PhaseTotals = %v", totals)
	}
	ratios := tr.PhaseRatios()
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ratios sum to %g", sum)
	}
	if tr.String() == "" {
		t.Error("String must render")
	}
}

func TestPhaseRatiosEmpty(t *testing.T) {
	tr := &Trace{}
	ratios := tr.PhaseRatios()
	for _, r := range ratios {
		if r != 0 {
			t.Fatal("empty trace must have zero ratios")
		}
	}
}

func TestCostModelQueueDisciplineGap(t *testing.T) {
	m := DefaultCostModel()
	// Same traffic, global-queue (Hama) vs direct-apply (Cyclops): the
	// queue-and-parse path must cost strictly more.
	hama := m.StepCost(1000, 500, 500, 1, 1, 8, true, m.FlatBarrier(8))
	cyc := m.StepCost(1000, 500, 500, 1, 1, 8, false, m.FlatBarrier(8))
	if hama <= cyc {
		t.Fatalf("global queue %g must exceed direct apply %g", hama, cyc)
	}
}

func TestCostModelThreadsHelpCompute(t *testing.T) {
	m := DefaultCostModel()
	one := m.StepCost(100000, 0, 0, 1, 1, 1, false, 0)
	eight := m.StepCost(100000, 0, 0, 8, 1, 1, false, 0)
	if eight >= one {
		t.Fatalf("8 threads %g must beat 1 thread %g", eight, one)
	}
	if one/eight < 7 || one/eight > 9 {
		t.Fatalf("compute scaling = %g, want ≈8", one/eight)
	}
}

func TestHierarchicalBarrierBeatsFlat(t *testing.T) {
	m := DefaultCostModel()
	// Fig 12's story: 48 flat workers vs 6 machines × 8 threads.
	flat := m.FlatBarrier(48)
	hier := m.HierarchicalBarrier(6, 8)
	if hier >= flat {
		t.Fatalf("hierarchical %g must beat flat %g", hier, flat)
	}
}

func TestBarrierGrowsWithParticipants(t *testing.T) {
	m := DefaultCostModel()
	prev := 0.0
	for _, n := range []int{2, 6, 12, 24, 48} {
		b := m.FlatBarrier(n)
		if b <= prev {
			t.Fatalf("barrier cost not increasing at n=%d", n)
		}
		prev = b
	}
}

func TestStepCostReceiversParallelise(t *testing.T) {
	m := DefaultCostModel()
	r1 := m.StepCost(0, 0, 10000, 1, 1, 1, false, 0)
	r4 := m.StepCost(0, 0, 10000, 1, 4, 1, false, 0)
	if r4 >= r1 {
		t.Fatalf("4 receivers %g must beat 1 receiver %g", r4, r1)
	}
}

func TestStepCostClampsZeroParallelism(t *testing.T) {
	m := DefaultCostModel()
	if c := m.StepCost(100, 0, 100, 0, 0, 1, false, 0); c <= 0 {
		t.Fatalf("cost with clamped parallelism = %g", c)
	}
}

func TestSummarizeResiduals(t *testing.T) {
	n, p50, p90, max := SummarizeResiduals(nil)
	if n != 0 || p50 != 0 || p90 != 0 || max != 0 {
		t.Fatalf("empty set = %d/%g/%g/%g, want zeros", n, p50, p90, max)
	}

	// Ten values 1..10: nearest-rank p50 = 5, p90 = 9, max = 10.
	xs := []float64{10, 3, 7, 1, 9, 5, 2, 8, 4, 6}
	n, p50, p90, max = SummarizeResiduals(xs)
	if n != 10 || p50 != 5 || p90 != 9 || max != 10 {
		t.Fatalf("1..10 = %d/%g/%g/%g, want 10/5/9/10", n, p50, p90, max)
	}

	// Non-finite samples (an SSSP vertex leaving +Inf, a NaN) are dropped.
	xs = []float64{math.Inf(1), math.NaN(), 2, math.Inf(-1), 4}
	n, p50, p90, max = SummarizeResiduals(xs)
	if n != 2 || p50 != 2 || p90 != 4 || max != 4 {
		t.Fatalf("with non-finite = %d/%g/%g/%g, want 2/2/4/4", n, p50, p90, max)
	}

	if s := (StepStats{Messages: 10, RedundantMessages: 4}); s.RedundantRatio() != 0.4 {
		t.Fatalf("RedundantRatio = %g, want 0.4", s.RedundantRatio())
	}
	if s := (StepStats{}); s.RedundantRatio() != 0 {
		t.Fatalf("RedundantRatio of empty step = %g, want 0", s.RedundantRatio())
	}
}

func TestWriteCSV(t *testing.T) {
	tr := &Trace{Engine: "hama", Workers: 3}
	tr.Append(StepStats{Step: 0, Active: 7, Messages: 42, ModelNanos: 1500,
		Durations: [4]time.Duration{1, 2, 3, 4}})
	tr.Append(StepStats{Step: 1, Active: 3, Messages: 5})
	var buf strings.Builder
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "engine,workers,step,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "hama,3,0,7,") || !strings.Contains(lines[1], ",42,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}
