package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVHeader is the stable column set of WriteCSV, exported so tests and
// external consumers can assert against it.
var CSVHeader = []string{
	"engine", "workers", "step", "active", "changed", "messages",
	"redundant_messages", "compute_units_max", "send_max", "recv_max",
	"residual_n", "residual_p50", "residual_p90", "residual_max",
	"prs_ns", "cmp_ns", "snd_ns", "syn_ns", "model_ns",
}

// WriteCSV emits the trace as one CSV row per superstep, for external
// plotting of the Figure 10/13-style series. Columns are stable API.
func WriteCSV(w io.Writer, t *Trace) error {
	return WriteCSVAll(w, t)
}

// WriteCSVAll emits several traces into one CSV with a single header; the
// engine and workers columns distinguish the runs (cyclops-bench -trace
// collects every engine run of an experiment this way).
func WriteCSVAll(w io.Writer, traces ...*Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return fmt.Errorf("metrics: csv: %w", err)
	}
	for _, t := range traces {
		if err := writeRows(cw, t); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: csv: %w", err)
	}
	return nil
}

func writeRows(cw *csv.Writer, t *Trace) error {
	for _, s := range t.Steps {
		row := []string{
			t.Engine,
			strconv.Itoa(t.Workers),
			strconv.Itoa(s.Step),
			strconv.FormatInt(s.Active, 10),
			strconv.FormatInt(s.Changed, 10),
			strconv.FormatInt(s.Messages, 10),
			strconv.FormatInt(s.RedundantMessages, 10),
			strconv.FormatInt(s.ComputeUnitsMax, 10),
			strconv.FormatInt(s.SendMax, 10),
			strconv.FormatInt(s.RecvMax, 10),
			strconv.FormatInt(s.ResidualN, 10),
			strconv.FormatFloat(s.ResidualP50, 'g', -1, 64),
			strconv.FormatFloat(s.ResidualP90, 'g', -1, 64),
			strconv.FormatFloat(s.ResidualMax, 'g', -1, 64),
			strconv.FormatInt(s.Durations[Parse].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[Compute].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[Send].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[Sync].Nanoseconds(), 10),
			strconv.FormatFloat(s.ModelNanos, 'f', 0, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv: %w", err)
		}
	}
	return nil
}
