// Package aggregate implements the distributed aggregators and convergence
// detectors of §2.2.3 and §4.4. BSP programs publish named float64
// contributions during compute; the engine folds worker partials at the
// barrier and exposes the previous superstep's folded values to the next
// superstep — exactly Pregel's aggregator visibility. Two termination
// policies are provided: the paper's coarse global-error detector and the
// finer converged-proportion detector Cyclops adds (§4.4).
package aggregate

import "fmt"

// Op is the combining operation of an aggregator.
type Op int

const (
	// Sum adds contributions.
	Sum Op = iota
	// Max keeps the maximum contribution.
	Max
	// Min keeps the minimum contribution.
	Min
)

// Values holds one worker's (or the folded global) aggregator values.
type Values map[string]float64

// Registry defines the aggregators of a job and holds the folded values of
// the previous superstep. It is written only at barriers (single goroutine)
// and read during compute, so it needs no locking.
type Registry struct {
	ops  map[string]Op
	prev Values
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]Op), prev: make(Values)}
}

// Define registers an aggregator. Redefining a name replaces its op.
func (r *Registry) Define(name string, op Op) { r.ops[name] = op }

// Combine folds contribution v into a worker-local partial under the
// aggregator's op. Unknown names behave as Sum, so programs can aggregate ad
// hoc. Combine is called concurrently from worker threads and therefore
// never mutates the registry — Define all non-Sum aggregators before Run.
func (r *Registry) Combine(local Values, name string, v float64) {
	op, ok := r.ops[name]
	if !ok {
		op = Sum
	}
	cur, exists := local[name]
	if !exists {
		local[name] = v
		return
	}
	switch op {
	case Sum:
		local[name] = cur + v
	case Max:
		if v > cur {
			local[name] = v
		}
	case Min:
		if v < cur {
			local[name] = v
		}
	default:
		panic(fmt.Sprintf("aggregate: unknown op %d", op))
	}
}

// Fold merges worker partials into the registry, making them the values
// visible in the next superstep. Partials are consumed (callers pass fresh
// maps each superstep).
func (r *Registry) Fold(partials []Values) {
	folded := make(Values)
	for _, p := range partials {
		for name, v := range p {
			r.Combine(folded, name, v)
		}
	}
	r.prev = folded
}

// Value returns the folded value of the previous superstep.
func (r *Registry) Value(name string) (float64, bool) {
	v, ok := r.prev[name]
	return v, ok
}

// HaltFunc decides, at the end of a superstep, whether the job should stop.
// agg reads the values folded at this superstep's barrier; active is the
// number of vertices that will be active next superstep.
type HaltFunc func(step int, agg func(name string) (float64, bool), active int64) bool

// HaltWhenInactive is the default Pregel/Cyclops termination: stop when no
// vertex is active.
func HaltWhenInactive() HaltFunc {
	return func(_ int, _ func(string) (float64, bool), active int64) bool {
		return active == 0
	}
}

// GlobalErrorHalt reproduces the paper's coarse detector: stop when the
// average of aggregator `name` over n vertices drops below eps. As §2.2.3
// shows, this can falsely converge important vertices — which is exactly
// what experiment F3.3 demonstrates.
func GlobalErrorHalt(name string, n int, eps float64) HaltFunc {
	return func(step int, agg func(string) (float64, bool), _ int64) bool {
		if step == 0 {
			return false // aggregates need one superstep to flow
		}
		total, ok := agg(name)
		if !ok {
			return false
		}
		return total/float64(n) < eps
	}
}

// ConvergedProportionHalt is Cyclops' finer detector (§4.4): stop when the
// fraction of converged vertices (aggregator `name` counts them) reaches
// target. n is the vertex count.
func ConvergedProportionHalt(name string, n int, target float64) HaltFunc {
	return func(step int, agg func(string) (float64, bool), _ int64) bool {
		if step == 0 || n == 0 {
			return n == 0
		}
		converged, ok := agg(name)
		if !ok {
			return false
		}
		return converged/float64(n) >= target
	}
}

// MaxSteps wraps another HaltFunc with a superstep budget: stop when inner
// fires or after limit supersteps.
func MaxSteps(limit int, inner HaltFunc) HaltFunc {
	return func(step int, agg func(string) (float64, bool), active int64) bool {
		if step+1 >= limit {
			return true
		}
		if inner == nil {
			return active == 0
		}
		return inner(step, agg, active)
	}
}
