package aggregate

import "testing"

func TestCombineOps(t *testing.T) {
	r := NewRegistry()
	r.Define("sum", Sum)
	r.Define("max", Max)
	r.Define("min", Min)
	local := make(Values)
	for _, v := range []float64{3, 1, 2} {
		r.Combine(local, "sum", v)
		r.Combine(local, "max", v)
		r.Combine(local, "min", v)
	}
	if local["sum"] != 6 || local["max"] != 3 || local["min"] != 1 {
		t.Fatalf("local = %v", local)
	}
}

func TestCombineUnknownNameDefaultsToSum(t *testing.T) {
	r := NewRegistry()
	local := make(Values)
	r.Combine(local, "adhoc", 2)
	r.Combine(local, "adhoc", 3)
	if local["adhoc"] != 5 {
		t.Fatalf("adhoc = %g", local["adhoc"])
	}
}

func TestFoldAcrossWorkers(t *testing.T) {
	r := NewRegistry()
	r.Define("err", Sum)
	r.Define("peak", Max)
	p1 := Values{"err": 1.5, "peak": 10}
	p2 := Values{"err": 2.5, "peak": 4}
	r.Fold([]Values{p1, p2})
	if v, ok := r.Value("err"); !ok || v != 4 {
		t.Fatalf("err = %v %v", v, ok)
	}
	if v, _ := r.Value("peak"); v != 10 {
		t.Fatalf("peak = %v", v)
	}
	if _, ok := r.Value("absent"); ok {
		t.Fatal("absent name must report !ok")
	}
	// A later fold replaces, not accumulates.
	r.Fold([]Values{{"err": 1}})
	if v, _ := r.Value("err"); v != 1 {
		t.Fatalf("refolded err = %v", v)
	}
}

func TestHaltWhenInactive(t *testing.T) {
	h := HaltWhenInactive()
	if h(3, nil, 5) {
		t.Error("must not halt with active vertices")
	}
	if !h(3, nil, 0) {
		t.Error("must halt with zero active")
	}
}

func TestGlobalErrorHalt(t *testing.T) {
	r := NewRegistry()
	h := GlobalErrorHalt("err", 100, 1e-3)
	agg := r.Value
	if h(0, agg, 10) {
		t.Error("must not halt at step 0")
	}
	r.Fold([]Values{{"err": 1.0}}) // avg 0.01 > eps
	if h(1, agg, 10) {
		t.Error("must not halt above eps")
	}
	r.Fold([]Values{{"err": 0.05}}) // avg 5e-4 < eps
	if !h(2, agg, 10) {
		t.Error("must halt below eps")
	}
	// Missing aggregator: keep running.
	if GlobalErrorHalt("ghost", 10, 1)(1, agg, 10) {
		t.Error("missing aggregator must not halt")
	}
}

func TestConvergedProportionHalt(t *testing.T) {
	r := NewRegistry()
	h := ConvergedProportionHalt("conv", 200, 0.95)
	if h(0, r.Value, 10) {
		t.Error("step 0 must not halt")
	}
	r.Fold([]Values{{"conv": 100}})
	if h(1, r.Value, 10) {
		t.Error("50% converged must not halt at target 95%")
	}
	r.Fold([]Values{{"conv": 191}})
	if !h(2, r.Value, 10) {
		t.Error("95.5% converged must halt")
	}
	if !ConvergedProportionHalt("conv", 0, 0.9)(0, r.Value, 0) {
		t.Error("zero-vertex job must halt immediately")
	}
}

func TestMaxSteps(t *testing.T) {
	h := MaxSteps(3, HaltWhenInactive())
	if h(0, nil, 5) || h(1, nil, 5) {
		t.Error("must not halt before the budget with active vertices")
	}
	if !h(2, nil, 5) {
		t.Error("must halt when budget reached")
	}
	if !h(0, nil, 0) {
		t.Error("inner halt must still fire early")
	}
	if !MaxSteps(100, nil)(0, nil, 0) {
		t.Error("nil inner must default to inactive halt")
	}
}
