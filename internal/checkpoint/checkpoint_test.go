package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
)

type demoState struct {
	Step   int
	Values []float64
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := demoState{Step: 4, Values: []float64{1, 2, 3}}
	if err := Save(dir, 4, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load[demoState](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 4 || len(got.Values) != 3 || got.Values[2] != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load[demoState](t.TempDir(), 1); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}

func TestStepsAndLatest(t *testing.T) {
	dir := t.TempDir()
	for _, s := range []int{10, 2, 7} {
		if err := Save(dir, s, demoState{Step: s}); err != nil {
			t.Fatal(err)
		}
	}
	steps, err := Steps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 2 || steps[2] != 10 {
		t.Fatalf("steps = %v", steps)
	}
	st, at, err := LoadLatest[demoState](dir)
	if err != nil {
		t.Fatal(err)
	}
	if at != 10 || st.Step != 10 {
		t.Fatalf("latest = %d (%+v)", at, st)
	}
}

func TestStepsEmptyAndAbsentDir(t *testing.T) {
	dir := t.TempDir()
	steps, err := Steps(dir)
	if err != nil || steps != nil {
		t.Fatalf("empty dir: %v %v", steps, err)
	}
	steps, err = Steps(filepath.Join(dir, "missing"))
	if err != nil || steps != nil {
		t.Fatalf("absent dir: %v %v", steps, err)
	}
	if _, _, err := LoadLatest[demoState](dir); err == nil {
		t.Fatal("LoadLatest on empty dir must error")
	}
}

// Failure-injection end-to-end: kill a PageRank run mid-flight, restore the
// latest checkpoint into a fresh engine, and verify the final ranks match an
// uninterrupted run exactly.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	g := gen.PowerLaw(300, 4, 8)
	dir := t.TempDir()
	const iters = 12

	mk := func(maxSteps, ckptEvery int) (*cyclops.Engine[float64, float64], error) {
		return cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclops.Config[float64, float64]{
				Cluster:         cluster.Flat(2, 2),
				MaxSupersteps:   maxSteps,
				CheckpointEvery: ckptEvery,
				Checkpoints: func(s cyclops.State[float64, float64]) error {
					if ckptEvery == 0 {
						return nil
					}
					return Save(dir, s.Step, s)
				},
			})
	}

	// Uninterrupted run → ground truth.
	full, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}

	// "Crashing" run: checkpoint every 4 steps, die at step 7 (after the
	// step-4 checkpoint) and abandon the engine, as a machine failure would.
	crash, err := mk(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crash.Run(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh engine and finish.
	state, at, err := LoadLatest[cyclops.State[float64, float64]](dir)
	if err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Fatalf("latest checkpoint at %d, want 4", at)
	}
	rec, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Run(); err != nil {
		t.Fatal(err)
	}
	wantVals, gotVals := full.Values(), rec.Values()
	for v := range wantVals {
		if wantVals[v] != gotVals[v] {
			t.Fatalf("vertex %d: %g vs %g after recovery", v, wantVals[v], gotVals[v])
		}
	}
}

// TestBSPCrashRecoveryRoundTrip is the bsp.State analogue of the cyclops
// end-to-end test: the snapshot goes through Save's gob encoding and back
// (including the Pending message queues), then restores into a fresh engine
// whose final values must match an uninterrupted run exactly.
func TestBSPCrashRecoveryRoundTrip(t *testing.T) {
	g := gen.PowerLaw(300, 4, 8)
	dir := t.TempDir()
	const iters = 12

	mk := func(maxSteps, ckptEvery int) (*bsp.Engine[float64, float64], error) {
		return bsp.New[float64, float64](g, algorithms.PageRankBSP{},
			bsp.Config[float64, float64]{
				Cluster:         cluster.Flat(2, 2),
				MaxSupersteps:   maxSteps,
				CheckpointEvery: ckptEvery,
				Checkpoints: func(s bsp.State[float64, float64]) error {
					if ckptEvery == 0 {
						return nil
					}
					return Save(dir, s.Step, s)
				},
			})
	}

	full, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}

	crash, err := mk(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crash.Run(); err != nil {
		t.Fatal(err)
	}

	state, at, err := LoadLatest[bsp.State[float64, float64]](dir)
	if err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Fatalf("latest checkpoint at %d, want 4", at)
	}
	rec, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Run(); err != nil {
		t.Fatal(err)
	}
	wantVals, gotVals := full.Values(), rec.Values()
	for v := range wantVals {
		if wantVals[v] != gotVals[v] {
			t.Fatalf("vertex %d: %g vs %g after recovery", v, wantVals[v], gotVals[v])
		}
	}
}

// TestGASCrashRecoveryRoundTrip does the same for gas.State: the snapshot
// holds master values only, and Restore must rebuild every mirror's cached
// copy from it (§3.6) before the run resumes.
func TestGASCrashRecoveryRoundTrip(t *testing.T) {
	g := gen.PowerLaw(300, 4, 8)
	dir := t.TempDir()
	const iters = 12

	mk := func(maxSteps, ckptEvery int) (*gas.Engine[algorithms.PRValue, float64], error) {
		return gas.New[algorithms.PRValue, float64](g,
			algorithms.NewPageRankGAS(g, iters, 1e-12),
			gas.Config[algorithms.PRValue, float64]{
				Cluster:         cluster.Flat(2, 2),
				Partitioner:     gas.RandomVertexCut{},
				MaxSupersteps:   maxSteps,
				CheckpointEvery: ckptEvery,
				Checkpoints: func(s gas.State[algorithms.PRValue]) error {
					if ckptEvery == 0 {
						return nil
					}
					return Save(dir, s.Step, s)
				},
			})
	}

	full, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}

	crash, err := mk(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crash.Run(); err != nil {
		t.Fatal(err)
	}

	state, at, err := LoadLatest[gas.State[algorithms.PRValue]](dir)
	if err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Fatalf("latest checkpoint at %d, want 4", at)
	}
	rec, err := mk(iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Run(); err != nil {
		t.Fatal(err)
	}
	wantVals, gotVals := algorithms.Ranks(full.Values()), algorithms.Ranks(rec.Values())
	for v := range wantVals {
		if wantVals[v] != gotVals[v] {
			t.Fatalf("vertex %d: %g vs %g after recovery", v, wantVals[v], gotVals[v])
		}
	}
}

// TestStrayTempFileIgnored simulates a crash in the middle of Save: the
// abandoned ckpt-* temp file must be invisible to Steps and LoadLatest, which
// only trust fully renamed step-NNNNNN.ckpt files.
func TestStrayTempFileIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, 3, demoState{Step: 3, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// Half-written temp from a crashed writer, exactly as CreateTemp names it.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-1234567890"), []byte("partial gob"), 0o600); err != nil {
		t.Fatal(err)
	}
	steps, err := Steps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0] != 3 {
		t.Fatalf("steps = %v, want [3]", steps)
	}
	st, at, err := LoadLatest[demoState](dir)
	if err != nil {
		t.Fatal(err)
	}
	if at != 3 || st.Step != 3 {
		t.Fatalf("latest = %d (%+v), want step 3", at, st)
	}
}

func TestSaveErrorPaths(t *testing.T) {
	// MkdirAll failure: a path under a regular file (fails even for root,
	// unlike permission bits).
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(filepath.Join(f, "sub"), 1, demoState{}); err == nil {
		t.Fatal("mkdir under a file must fail")
	}
}

func TestLoadCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "step-000002.ckpt")
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load[demoState](dir, 2); err == nil {
		t.Fatal("corrupt checkpoint must fail to decode")
	}
}

func TestStepsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "step-abc.ckpt", "step-7.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(dir, 7, demoState{Step: 7}); err != nil {
		t.Fatal(err)
	}
	steps, err := Steps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0] != 7 {
		t.Fatalf("steps = %v", steps)
	}
}
