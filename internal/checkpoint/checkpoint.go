// Package checkpoint persists engine snapshots (§3.6 fault tolerance). The
// engines produce in-memory State values at barrier points; this package
// writes them to the "underlying storage layer" (a directory standing in for
// the paper's HDFS) as gob files named by superstep, and restores the most
// recent one after a failure.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Save writes one snapshot to dir as step-<n>.ckpt (atomically, via a
// temporary file, so a crash mid-write never corrupts the latest
// checkpoint).
func Save[S any](dir string, step int, state S) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(&state); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("step-%06d.ckpt", step))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads the snapshot for one superstep.
func Load[S any](dir string, step int) (S, error) {
	var state S
	f, err := os.Open(filepath.Join(dir, fmt.Sprintf("step-%06d.ckpt", step)))
	if err != nil {
		return state, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&state); err != nil {
		return state, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return state, nil
}

// Steps lists the supersteps with saved checkpoints, ascending.
func Steps(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var steps []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "step-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "step-"), ".ckpt"))
		if err != nil {
			continue
		}
		steps = append(steps, n)
	}
	sort.Ints(steps)
	return steps, nil
}

// LoadLatest restores the most recent checkpoint in dir.
func LoadLatest[S any](dir string) (S, int, error) {
	var zero S
	steps, err := Steps(dir)
	if err != nil {
		return zero, 0, err
	}
	if len(steps) == 0 {
		return zero, 0, fmt.Errorf("checkpoint: no checkpoints in %s", dir)
	}
	last := steps[len(steps)-1]
	state, err := Load[S](dir, last)
	return state, last, err
}
