package harness

import (
	"fmt"
	"io"
	"sort"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// Ablations isolate the individual design decisions the paper bundles
// together, quantifying each one's contribution on the gweb PageRank
// workload. They go beyond the paper's figures but answer the questions its
// §2 analysis raises: how much of the win is the queue discipline, how much
// is dynamic activation, and what does each convergence detector cost in
// accuracy?

// AblationQueue isolates §2.2.2's contention claim: the identical Hama
// engine and program, with only the receive-side queue discipline switched
// between the locked global in-queue and Cyclops-style per-sender slots.
func AblationQueue(o Options, w io.Writer) error {
	o = o.normalize()
	ctx, err := (workloadSpec{"PR", "gweb"}).prepare(o)
	if err != nil {
		return err
	}
	t := newTable("queue-discipline", "model-ms", "locked-enqueues", "messages", "steps")
	for _, perSender := range []bool{false, true} {
		e, err := bsp.New[float64, float64](ctx.graph, algorithms.PageRankBSP{Eps: ctx.params.eps},
			bsp.Config[float64, float64]{
				Cluster:         o.flat(),
				MaxSupersteps:   ctx.params.maxSteps,
				Halt:            haltForPR(ctx.graph.NumVertices(), ctx.params.eps),
				PerSenderQueues: perSender,
			})
		if err != nil {
			return err
		}
		trace, err := e.Run()
		if err != nil {
			return err
		}
		name := "global-locked (Hama)"
		if perSender {
			name = "per-sender (Cyclops-style)"
		}
		st := e.TransportStats()
		t.addf("%s|%.1f|%d|%d|%d", name,
			trace.ModelTime()/1e6, st.LockedEnqueues, st.Messages, len(trace.Steps))
	}
	t.write(w)
	return nil
}

// AblationCombiner quantifies what Hama's combiner buys: the same PageRank
// job with and without sum-combining of messages bound for one vertex.
func AblationCombiner(o Options, w io.Writer) error {
	o = o.normalize()
	ctx, err := (workloadSpec{"PR", "gweb"}).prepare(o)
	if err != nil {
		return err
	}
	t := newTable("combiner", "messages", "bytes", "model-ms")
	for _, combine := range []bool{false, true} {
		cfg := bsp.Config[float64, float64]{
			Cluster:       o.flat(),
			MaxSupersteps: ctx.params.maxSteps,
			Halt:          haltForPR(ctx.graph.NumVertices(), ctx.params.eps),
		}
		if combine {
			cfg.Combiner = func(a, b float64) float64 { return a + b }
		}
		e, err := bsp.New[float64, float64](ctx.graph, algorithms.PageRankBSP{Eps: ctx.params.eps}, cfg)
		if err != nil {
			return err
		}
		trace, err := e.Run()
		if err != nil {
			return err
		}
		name := "off"
		if combine {
			name = "sum"
		}
		st := e.TransportStats()
		t.addf("%s|%d|%d|%.1f", name, st.Messages, st.Bytes, trace.ModelTime()/1e6)
	}
	t.write(w)
	fmt.Fprintln(w, "\n(combining helps Hama but cannot remove per-edge traffic from live")
	fmt.Fprintln(w, " vertices — Cyclops removes the traffic itself)")
	return nil
}

// AblationActivation isolates dynamic computation (§3.3): Cyclops PageRank
// with local-error activation versus an eager variant (eps=0) that keeps
// every vertex publishing every superstep.
func AblationActivation(o Options, w io.Writer) error {
	o = o.normalize()
	ctx, err := (workloadSpec{"PR", "gweb"}).prepare(o)
	if err != nil {
		return err
	}
	ref := algorithms.PageRankRef(ctx.graph, 200)
	t := newTable("activation", "vertex-steps", "messages", "steps", "L1-vs-offline")
	for _, eps := range []float64{0, ctx.params.eps} {
		e, err := cyclops.New[float64, float64](ctx.graph, algorithms.PageRankCyclops{Eps: eps},
			cyclops.Config[float64, float64]{
				Cluster:       o.flat(),
				MaxSupersteps: ctx.params.maxSteps,
			})
		if err != nil {
			return err
		}
		trace, err := e.Run()
		if err != nil {
			return err
		}
		var vertexSteps int64
		for _, s := range trace.Steps {
			vertexSteps += s.Active
		}
		name := fmt.Sprintf("dynamic (eps=%.0e)", eps)
		if eps == 0 {
			name = "eager (all active)"
		}
		t.addf("%s|%d|%d|%d|%.2e", name,
			vertexSteps, trace.TotalMessages(), len(trace.Steps),
			algorithms.L1Distance(e.Values(), ref))
	}
	t.write(w)
	return nil
}

// AblationDetectors compares the three convergence detectors of §2.2.3/§4.4
// — Hama's global error, Cyclops' local error, and Cyclops' finer
// converged-proportion detector — by final accuracy against the offline
// result and by cost.
func AblationDetectors(o Options, w io.Writer) error {
	o = o.normalize()
	ctx, err := (workloadSpec{"PR", "gweb"}).prepare(o)
	if err != nil {
		return err
	}
	g := ctx.graph
	n := g.NumVertices()
	eps := 1e-4 / float64(n) // the paper-relative bound used by Fig3
	ref := algorithms.PageRankRef(g, 200)

	t := newTable("detector", "steps", "messages", "L1-vs-offline", "top10%-unconverged")
	type vr struct{ rank, err float64 }
	report := func(name string, values []float64, steps int, msgs int64) {
		// Count top-decile vertices (by offline rank) whose error exceeds eps.
		vs := make([]vr, n)
		for v := 0; v < n; v++ {
			vs[v] = vr{rank: ref[v], err: abs64(values[v] - ref[v])}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].rank > vs[j].rank })
		top := n / 10
		if top == 0 {
			top = 1
		}
		bad := 0
		for _, x := range vs[:top] {
			if x.err > eps {
				bad++
			}
		}
		t.addf("%s|%d|%d|%.2e|%.1f%%", name, steps, msgs,
			algorithms.L1Distance(values, ref), 100*float64(bad)/float64(top))
	}

	// 1. Hama + global-error aggregate (the paper's problematic default).
	he, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: eps},
		bsp.Config[float64, float64]{
			Cluster: o.flat(), MaxSupersteps: 120,
			Halt: aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, n, eps),
		})
	if err != nil {
		return err
	}
	htr, err := he.Run()
	if err != nil {
		return err
	}
	report("global error (Hama)", he.Values(), len(htr.Steps), htr.TotalMessages())

	// 2. Cyclops local error: each vertex stops on its own |Δ|.
	ce, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps},
		cyclops.Config[float64, float64]{Cluster: o.flat(), MaxSupersteps: 120})
	if err != nil {
		return err
	}
	ctr, err := ce.Run()
	if err != nil {
		return err
	}
	report("local error (Cyclops)", ce.Values(), len(ctr.Steps), ctr.TotalMessages())

	// 3. Cyclops + converged-proportion (§4.4): stop when 99% of vertices
	// report local convergence, whatever the laggards do.
	pe, err := cyclops.New[float64, float64](g, proportionPR{eps: eps},
		cyclops.Config[float64, float64]{
			Cluster: o.flat(), MaxSupersteps: 120,
			Halt: aggregate.ConvergedProportionHalt(convergedAggregator, n, 0.99),
		})
	if err != nil {
		return err
	}
	ptr, err := pe.Run()
	if err != nil {
		return err
	}
	report("converged-proportion 99%", pe.Values(), len(ptr.Steps), ptr.TotalMessages())

	t.write(w)
	fmt.Fprintln(w, "\n(the global detector stops earliest but leaves high-rank vertices")
	fmt.Fprintln(w, " unconverged — the accuracy problem §2.2.3 documents)")
	return nil
}

const convergedAggregator = "pr-converged"

// proportionPR is PageRankCyclops plus a converged-vertex counter feeding
// the §4.4 proportion detector.
type proportionPR struct {
	eps float64
}

// Init implements cyclops.Program.
func (p proportionPR) Init(id graph.ID, g *graph.Graph) (float64, float64, bool) {
	return algorithms.PageRankCyclops{Eps: p.eps}.Init(id, g)
}

// Compute implements cyclops.Program: every vertex stays active and counts
// itself once its local error is below eps, so the proportion detector can
// stop the whole job at the target percentile — §4.4's "finer" policy trades
// the stragglers' accuracy for bounded extra supersteps.
func (p proportionPR) Compute(ctx *cyclops.Context[float64, float64]) {
	var sum float64
	for i := 0; i < ctx.InDegree(); i++ {
		sum += ctx.NeighborMessage(i)
	}
	value := 0.15/float64(ctx.NumVertices()) + algorithms.Damping*sum
	last := ctx.Value()
	ctx.SetValue(value)
	err := value - last
	if err < 0 {
		err = -err
	}
	if err <= p.eps {
		ctx.Aggregate(convergedAggregator, 1)
	}
	d := ctx.OutDegree()
	if d == 0 {
		d = 1
	}
	ctx.Publish(value/float64(d), true)
}
