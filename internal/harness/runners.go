package harness

import (
	"fmt"
	"time"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

// The engine runners instantiate the right generic engine/program pair for
// each Table 1 workload. ALS hyper-parameters follow the SYN-GL setup at
// laptop scale (d=8, λ=0.05), SSSP uses source 0, CD caps at cdIters rounds
// (synchronous label propagation may legitimately oscillate).

func alsConfig(users, sweeps int) algorithms.ALSConfig {
	return algorithms.ALSConfig{Users: users, D: 8, Lambda: 0.05, Sweeps: sweeps}
}

func runHama(algo string, g *graph.Graph, cc cluster.Config,
	part partition.Partitioner, p runParams) (RunResult, error) {

	r := RunResult{Engine: "hama", Config: cc}
	mem := newMemTracker(p.trackMemory, p.forceGC)
	switch algo {
	case "PR":
		e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: p.eps},
			bsp.Config[float64, float64]{
				Cluster:       cc,
				Partitioner:   part,
				MaxSupersteps: p.maxSteps,
				Hooks:         p.hooks,
				Audit:         p.audit,
				Halt:          haltForPR(g.NumVertices(), p.eps),
				MsgCodec:      graph.Float64Codec{},
				// "Same value" at the working epsilon: the redundant-message
				// metric of Figure 3(2) counts re-sends of converged ranks.
				Equal:    func(a, b float64) bool { return abs64(a-b) < p.eps },
				Residual: scalarResidual,
				OnStep: func(step int, e *bsp.Engine[float64, float64]) {
					mem.sample()
					if p.onValues != nil {
						p.onValues(step, e.Values())
					}
				},
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = append([]float64(nil), e.Values()...)
		finish(&r, time.Since(start))
	case "SSSP":
		e, err := bsp.New[float64, float64](g, algorithms.SSSPBSP{Source: 0},
			bsp.Config[float64, float64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: p.maxSteps * 10,
				Hooks:    p.hooks,
				Audit:    p.audit,
				MsgCodec: graph.Float64Codec{},
				Residual: scalarResidual,
				OnStep:   func(int, *bsp.Engine[float64, float64]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = append([]float64(nil), e.Values()...)
		finish(&r, time.Since(start))
	case "CD":
		e, err := bsp.New[int64, int64](g, algorithms.CDBSP{},
			bsp.Config[int64, int64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: p.cdIters + 1,
				Hooks:    p.hooks,
				Audit:    p.audit,
				Halt:     algorithms.CDHalt(),
				MsgCodec: graph.Int64Codec{},
				Residual: labelResidual,
				OnStep:   func(int, *bsp.Engine[int64, int64]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = int64sToFloats(e.Values())
		finish(&r, time.Since(start))
	case "ALS":
		cfg := alsConfig(p.alsUsers, p.alsSweeps)
		e, err := bsp.New[[]float64, algorithms.ALSMsg](g, algorithms.ALSBSP{Cfg: cfg},
			bsp.Config[[]float64, algorithms.ALSMsg]{
				Cluster: cc, Partitioner: part, MaxSupersteps: cfg.TotalSupersteps() + 4,
				Hooks:     p.hooks,
				Audit:     p.audit,
				SizeOfMsg: func(m algorithms.ALSMsg) int64 { return int64(8*len(m.Vec)) + 8 },
				MsgCodec:  algorithms.ALSMsgCodec{},
				OnStep:    func(int, *bsp.Engine[[]float64, algorithms.ALSMsg]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		finish(&r, time.Since(start))
	default:
		return r, fmt.Errorf("harness: unknown algorithm %q", algo)
	}
	mem.finish(&r)
	return r, nil
}

func runCyclops(algo string, g *graph.Graph, cc cluster.Config,
	part partition.Partitioner, p runParams) (RunResult, error) {

	r := RunResult{Engine: "cyclops", Config: cc}
	if cc.Normalize().Threads > 1 || cc.Normalize().Receivers > 1 {
		r.Engine = "cyclopsmt"
	}
	mem := newMemTracker(p.trackMemory, p.forceGC)
	switch algo {
	case "PR":
		e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: p.eps},
			cyclops.Config[float64, float64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: p.maxSteps,
				Hooks:    p.hooks,
				Audit:    p.audit,
				MsgCodec: graph.Float64Codec{},
				Equal:    func(a, b float64) bool { return abs64(a-b) < p.eps },
				Residual: scalarResidual,
				OnStep: func(step int, e *cyclops.Engine[float64, float64]) {
					mem.sample()
					if p.onValues != nil {
						p.onValues(step, e.Values())
					}
				},
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = e.Values()
		r.Replication = e.ReplicationFactor()
		r.Ingress = e.Ingress()
		finish(&r, time.Since(start))
	case "SSSP":
		e, err := cyclops.New[float64, float64](g, algorithms.SSSPCyclops{Source: 0},
			cyclops.Config[float64, float64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: p.maxSteps * 10,
				Hooks:    p.hooks,
				Audit:    p.audit,
				MsgCodec: graph.Float64Codec{},
				Residual: scalarResidual,
				OnStep:   func(int, *cyclops.Engine[float64, float64]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = e.Values()
		r.Replication = e.ReplicationFactor()
		r.Ingress = e.Ingress()
		finish(&r, time.Since(start))
	case "CD":
		e, err := cyclops.New[int64, int64](g, algorithms.CDCyclops{},
			cyclops.Config[int64, int64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: p.cdIters,
				Hooks:    p.hooks,
				Audit:    p.audit,
				MsgCodec: graph.Int64Codec{},
				Residual: labelResidual,
				OnStep:   func(int, *cyclops.Engine[int64, int64]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = int64sToFloats(e.Values())
		r.Replication = e.ReplicationFactor()
		r.Ingress = e.Ingress()
		finish(&r, time.Since(start))
	case "ALS":
		cfg := alsConfig(p.alsUsers, p.alsSweeps)
		e, err := cyclops.New[[]float64, []float64](g, algorithms.ALSCyclops{Cfg: cfg},
			cyclops.Config[[]float64, []float64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: cfg.TotalSupersteps(),
				Hooks:     p.hooks,
				Audit:     p.audit,
				SizeOfMsg: func(m []float64) int64 { return int64(8 * len(m)) },
				MsgCodec:  graph.Float64SliceCodec{},
				OnStep:    func(int, *cyclops.Engine[[]float64, []float64]) { mem.sample() },
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Replication = e.ReplicationFactor()
		r.Ingress = e.Ingress()
		finish(&r, time.Since(start))
	default:
		return r, fmt.Errorf("harness: unknown algorithm %q", algo)
	}
	mem.finish(&r)
	return r, nil
}

// runGAS supports the workloads the paper compares against PowerGraph (PR
// and SSSP).
func runGAS(algo string, g *graph.Graph, cc cluster.Config, p runParams) (RunResult, error) {
	return runGASWithCut(algo, g, cc, gas.RandomVertexCut{}, p)
}

func runGASWithCut(algo string, g *graph.Graph, cc cluster.Config,
	cut gas.EdgePartitioner, p runParams) (RunResult, error) {

	r := RunResult{Engine: "powergraph", Config: cc}
	switch algo {
	case "PR":
		e, err := gas.New[algorithms.PRValue, float64](g,
			algorithms.NewPageRankGAS(g, p.maxSteps, p.eps),
			gas.Config[algorithms.PRValue, float64]{
				Cluster: cc, Partitioner: cut, MaxSupersteps: p.maxSteps,
				Hooks:    p.hooks,
				Audit:    p.audit,
				ValCodec: algorithms.PRValueCodec{},
				AccCodec: graph.Float64Codec{},
				Residual: func(old, new algorithms.PRValue) float64 {
					return abs64(old.Rank - new.Rank)
				},
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = algorithms.Ranks(e.Values())
		r.Replication = e.ReplicationFactor()
		finish(&r, time.Since(start))
	case "SSSP":
		e, err := gas.New[float64, float64](g, algorithms.SSSPGAS{Source: 0},
			gas.Config[float64, float64]{
				Cluster: cc, Partitioner: cut, MaxSupersteps: p.maxSteps * 10,
				Hooks:    p.hooks,
				Audit:    p.audit,
				ValCodec: graph.Float64Codec{},
				AccCodec: graph.Float64Codec{},
				Residual: scalarResidual,
			})
		if err != nil {
			return r, err
		}
		start := time.Now()
		trace, err := e.Run()
		if err != nil {
			return r, err
		}
		r.Trace = trace
		r.Transport = e.TransportStats()
		r.Values = e.Values()
		r.Replication = e.ReplicationFactor()
		finish(&r, time.Since(start))
	default:
		return r, fmt.Errorf("harness: algorithm %q not implemented on the GAS engine", algo)
	}
	return r, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// scalarResidual is the |Δ| convergence distance for float64-valued
// algorithms (PageRank ranks, SSSP distances).
func scalarResidual(old, new float64) float64 { return abs64(old - new) }

// labelResidual treats a community-detection relabel as distance 1 and a
// republished label as 0, so the residual quantiles read as the changed
// fraction (labels are ids, not a metric space).
func labelResidual(old, new int64) float64 {
	if old == new {
		return 0
	}
	return 1
}
