package harness

// Acceptance test for the traffic matrix: on multi-worker runs of all three
// engines, the per-superstep deltas the engines emit through OnCommMatrix
// must accumulate to exactly the transport's raw wire counters — same
// message count, same byte count, no sampling, no estimation. Also checks
// that Options.Audit threads through every runner without breaking a clean
// run.

import (
	"testing"

	"cyclops/internal/obs"
	"cyclops/internal/partition"
)

func TestCommMatrixMatchesTransportStats(t *testing.T) {
	o := tiny()
	ctx, err := workloadSpec{"PR", "wiki"}.prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"hama", "cyclops", "powergraph"} {
		t.Run(engine, func(t *testing.T) {
			comm := obs.NewCommTracker()
			p := ctx.params
			p.hooks = comm
			p.audit = true // a clean run must stay clean under audit
			r, err := RunWorkload(engine, "PR", ctx.graph, o.flat(), partition.Hash{}, p)
			if err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if r.Supersteps == 0 {
				t.Fatal("run did no supersteps")
			}

			cum := comm.Cumulative()
			if cum.Workers != o.flat().Workers() {
				t.Fatalf("matrix has %d workers, cluster has %d", cum.Workers, o.flat().Workers())
			}
			if got, want := cum.TotalMessages(), r.Transport.Messages; got != want {
				t.Errorf("matrix messages = %d, transport counted %d", got, want)
			}
			if got, want := cum.TotalBytes(), r.Transport.Bytes; got != want {
				t.Errorf("matrix bytes = %d, transport counted %d", got, want)
			}
			if cum.TotalMessages() == 0 {
				t.Error("no traffic recorded on a multi-worker run")
			}

			// Row and column marginals must both sum to the same total.
			var egress, ingress int64
			for _, v := range cum.Egress() {
				egress += v
			}
			for _, v := range cum.Ingress() {
				ingress += v
			}
			if egress != cum.TotalMessages() || ingress != cum.TotalMessages() {
				t.Errorf("marginals disagree: egress %d, ingress %d, total %d",
					egress, ingress, cum.TotalMessages())
			}
		})
	}
}
