package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Shape assertions for the ablation experiments: each must demonstrate the
// effect it was built to isolate, at tiny scale.

func TestAblationQueueShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationQueue(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "global-locked (Hama)") || !strings.Contains(out, "per-sender (Cyclops-style)") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// The per-sender row must report zero locked enqueues; the global row
	// must not.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "per-sender") && !strings.Contains(line, " 0 ") {
			t.Errorf("per-sender row should have 0 locked enqueues: %q", line)
		}
	}
}

func TestAblationCombinerShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationCombiner(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	offMsgs, sumMsgs := extractFirstInt(t, out, "off"), extractFirstInt(t, out, "sum")
	if sumMsgs >= offMsgs {
		t.Fatalf("combiner did not reduce messages: %d vs %d\n%s", sumMsgs, offMsgs, out)
	}
}

func TestAblationActivationShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationActivation(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	eager := extractFirstInt(t, out, "eager")
	dynamic := extractFirstInt(t, out, "dynamic")
	if dynamic >= eager {
		t.Fatalf("dynamic activation did not reduce vertex-steps: %d vs %d\n%s",
			dynamic, eager, out)
	}
}

func TestAblationDetectorsShape(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationDetectors(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"global error (Hama)", "local error (Cyclops)", "converged-proportion 99%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing detector row %q:\n%s", want, out)
		}
	}
}

// extractFirstInt returns the first integer field of the table row whose
// label starts with prefix.
func extractFirstInt(t *testing.T, out, prefix string) int64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		for _, f := range fields[1:] {
			var v int64
			ok := len(f) > 0
			for _, c := range f {
				if c < '0' || c > '9' {
					ok = false
					break
				}
				v = v*10 + int64(c-'0')
			}
			if ok {
				return v
			}
		}
	}
	t.Fatalf("no integer row starting with %q in:\n%s", prefix, out)
	return 0
}

func TestFig4ModelOrdering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4Models(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	perUpdate := func(prefix string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			fields := strings.Fields(line)
			var v float64
			if _, err := fmt.Sscanf(fields[len(fields)-1], "%f", &v); err == nil {
				return v
			}
		}
		t.Fatalf("no row for %q in:\n%s", prefix, out)
		return 0
	}
	cyc := perUpdate("cyclops")
	bspV := perUpdate("pregel/bsp")
	pg := perUpdate("powergraph")
	gl := perUpdate("graphlab")
	// The paper's Figure 4 ordering: Cyclops cheapest, GraphLab (locks +
	// bidirectional traffic) most expensive.
	if !(cyc < bspV && bspV < pg && pg < gl) {
		t.Fatalf("per-update ordering broken: cyclops=%.2f bsp=%.2f pg=%.2f graphlab=%.2f",
			cyc, bspV, pg, gl)
	}
}
