package harness

import (
	"fmt"
	"io"
	"sort"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/partition"
)

// paperWorkloads are the Table 1 algorithm↔dataset pairings of §6.1.
type workloadSpec struct {
	Algo    string
	Dataset string
}

func paperWorkloads() []workloadSpec {
	return []workloadSpec{
		{"PR", "amazon"}, {"PR", "gweb"}, {"PR", "ljournal"}, {"PR", "wiki"},
		{"ALS", "syn-gl"}, {"CD", "dblp"}, {"SSSP", "roadca"},
	}
}

func (w workloadSpec) label() string { return w.Algo + "/" + w.Dataset }

// prepare loads the dataset and derives run parameters.
func (w workloadSpec) prepare(o Options) (*runCtx, error) {
	g, meta, err := dataset(o, w.Dataset)
	if err != nil {
		return nil, err
	}
	p := defaultParams(o)
	p.maxSteps = 60
	p.alsUsers = meta.Users
	return &runCtx{spec: w, meta: meta, graph: g, params: p}, nil
}

// runCtx bundles what an engine run needs.
type runCtx struct {
	spec   workloadSpec
	meta   gen.Meta
	graph  *graph.Graph
	params runParams
}

// ---------------------------------------------------------------------------
// Fig 3 — BSP motivation: convergence asymmetry, redundant messages, final
// error distribution under global-error termination (§2.2).

// Fig3 reproduces all three panels of Figure 3 from one Hama PageRank run on
// the GWeb substitution.
func Fig3(o Options, w io.Writer) error {
	o = o.normalize()
	g, _, err := dataset(o, "gweb")
	if err != nil {
		return err
	}
	n := g.NumVertices()
	// The paper's bound (e=1e-10 on the 875k-vertex GWeb) is ≈1e-4/|V|;
	// scale it the same way so convergence asymmetry reproduces at any size.
	eps := 1e-4 / float64(n)

	var history [][]float64
	p := defaultParams(o)
	p.maxSteps = 80
	p.eps = eps
	p.onValues = func(step int, values []float64) {
		history = append(history, append([]float64(nil), values...))
	}
	res, err := RunWorkload("hama", "PR", g, o.flat(), partition.Hash{}, p)
	if err != nil {
		return err
	}

	// Panel 1: vertices newly converged per superstep (|Δrank| first drops
	// below eps and stays there).
	convergedAt := make([]int, n)
	for v := range convergedAt {
		convergedAt[v] = len(history) // never
	}
	for v := 0; v < n; v++ {
		for s := len(history) - 1; s >= 1; s-- {
			if abs64(history[s][v]-history[s-1][v]) >= eps {
				break
			}
			convergedAt[v] = s
		}
	}
	newly := make([]int, len(history)+1)
	for _, s := range convergedAt {
		newly[s]++
	}

	fmt.Fprintf(w, "Hama PageRank on gweb (|V|=%d, eps=%.0e): %d supersteps, %d messages\n\n",
		n, eps, res.Supersteps, res.Messages)
	t := newTable("superstep", "newly-converged", "cum-converged-%", "redundant-msg-ratio")
	cum := 0
	for s, st := range res.Trace.Steps {
		if s < len(newly) {
			cum += newly[s]
		}
		ratio := 0.0
		if st.Messages > 0 {
			ratio = float64(st.RedundantMessages) / float64(st.Messages)
		}
		t.addf("%d|%d|%.1f|%.3f", s, newly[min(s, len(newly)-1)],
			100*float64(cum)/float64(n), ratio)
	}
	t.write(w)

	// Panel 3: final per-vertex error against the offline result, split by
	// rank importance (top decile vs rest), reproducing the §2.2.3 finding
	// that global-error termination leaves the *important* vertices
	// unconverged.
	ref := algorithms.PageRankRef(g, 200)
	final := res.Values
	type ve struct {
		rank float64
		err  float64
	}
	ves := make([]ve, n)
	for v := 0; v < n; v++ {
		ves[v] = ve{rank: final[v], err: abs64(final[v] - ref[v])}
	}
	// Sort by rank descending (paper: "left ones have higher rank values").
	sort.Slice(ves, func(i, j int) bool { return ves[i].rank > ves[j].rank })
	top := n / 10
	if top == 0 {
		top = 1
	}
	topUnconv, restUnconv, zeros := 0, 0, 0
	for i, x := range ves {
		if x.err > eps {
			if i < top {
				topUnconv++
			} else {
				restUnconv++
			}
		}
		if x.err == 0 {
			zeros++
		}
	}
	fmt.Fprintf(w, "\nError distribution at global convergence (vs offline ranks):\n")
	fmt.Fprintf(w, "  top-10%% by rank: %d/%d vertices still above eps (%.2f%%)\n",
		topUnconv, top, 100*float64(topUnconv)/float64(top))
	fmt.Fprintf(w, "  remaining 90%%:  %d/%d vertices above eps (%.2f%%)\n",
		restUnconv, n-top, 100*float64(restUnconv)/float64(n-top))
	fmt.Fprintf(w, "  exact-zero error: %d vertices\n", zeros)
	return nil
}

// ---------------------------------------------------------------------------
// Fig 9 — headline speedups and scalability.

// runTriple runs Hama, flat Cyclops and CyclopsMT on one workload.
func runTriple(o Options, w workloadSpec, part partition.Partitioner) (hama, cyc, mt RunResult, err error) {
	ctx, err := w.prepare(o)
	if err != nil {
		return hama, cyc, mt, err
	}
	if hama, err = RunWorkload("hama", w.Algo, ctx.graph, o.flat(), part, ctx.params); err != nil {
		return hama, cyc, mt, err
	}
	if cyc, err = RunWorkload("cyclops", w.Algo, ctx.graph, o.flat(), part, ctx.params); err != nil {
		return hama, cyc, mt, err
	}
	mt, err = RunWorkload("cyclops", w.Algo, ctx.graph, o.mt(), part, ctx.params)
	return hama, cyc, mt, err
}

// Fig9Speedup reproduces Figure 9(1): normalized speedup of Cyclops and
// CyclopsMT over Hama with 48 workers on every Table 1 workload.
func Fig9Speedup(o Options, w io.Writer) error {
	return fig9SpeedupWith(o, w, partition.Hash{})
}

func fig9SpeedupWith(o Options, w io.Writer, part partition.Partitioner) error {
	o = o.normalize()
	t := newTable("workload", "hama-model-ms", "cyclops-X", "cyclopsmt-X",
		"hama-msgs", "cyclops-msgs", "steps-H/C", "wall-H/C/MT-ms")
	for _, spec := range paperWorkloads() {
		hama, cyc, mt, err := runTriple(o, spec, part)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.label(), err)
		}
		t.addf("%s|%.1f|%.2f|%.2f|%d|%d|%d/%d|%.0f/%.0f/%.0f",
			spec.label(), hama.ModelMs,
			speedup(hama.ModelMs, cyc.ModelMs),
			speedup(hama.ModelMs, mt.ModelMs),
			hama.Messages, cyc.Messages,
			hama.Supersteps, cyc.Supersteps,
			float64(hama.Wall.Milliseconds()),
			float64(cyc.Wall.Milliseconds()),
			float64(mt.Wall.Milliseconds()))
	}
	t.write(w)
	fmt.Fprintf(w, "\n(model time drives the speedup columns; wall time on this host is\n"+
		" reported for honesty — it lacks the cluster's parallel hardware)\n")
	return nil
}

// Fig9Scalability reproduces Figure 9(2): speedup over Hama-with-6-workers
// as the cluster grows 6 → 48 workers.
func Fig9Scalability(o Options, w io.Writer) error {
	o = o.normalize()
	scales := []int{1, 2, 4, 8} // workers per machine
	for _, spec := range paperWorkloads() {
		ctx, err := spec.prepare(o)
		if err != nil {
			return err
		}
		t := newTable("workers", "hama-X", "cyclops-X", "cyclopsmt-X")
		var base float64
		for _, wpm := range scales {
			flat := cluster.Flat(o.Machines, wpm)
			mtc := cluster.MT(o.Machines, wpm, 2)
			hama, err := RunWorkload("hama", spec.Algo, ctx.graph, flat, partition.Hash{}, ctx.params)
			if err != nil {
				return err
			}
			cyc, err := RunWorkload("cyclops", spec.Algo, ctx.graph, flat, partition.Hash{}, ctx.params)
			if err != nil {
				return err
			}
			mt, err := RunWorkload("cyclops", spec.Algo, ctx.graph, mtc, partition.Hash{}, ctx.params)
			if err != nil {
				return err
			}
			if base == 0 {
				base = hama.ModelMs
			}
			t.addf("%d|%.2f|%.2f|%.2f", flat.Workers(),
				speedup(base, hama.ModelMs), speedup(base, cyc.ModelMs), speedup(base, mt.ModelMs))
		}
		fmt.Fprintf(w, "\n%s (normalized to Hama @ %d workers)\n", spec.label(), o.Machines)
		t.write(w)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fig 10 — where the time goes.

// modelBreakdown recomputes the per-phase model split of a finished run.
func modelBreakdown(r RunResult) metrics.Breakdown {
	m := metrics.DefaultCostModel()
	cc := r.Config.Normalize()
	workers := cc.Workers()
	globalQ := r.Engine == "hama" || r.Engine == "powergraph"
	var total metrics.Breakdown
	for _, s := range r.Trace.Steps {
		barrier := m.FlatBarrier(workers)
		if r.Engine == "cyclopsmt" {
			barrier = m.HierarchicalBarrier(cc.Machines, cc.Threads)
		}
		b := m.StepCostParts(s.ComputeUnitsMax, s.SendMax, s.RecvMax,
			cc.Threads, cc.Receivers, workers, globalQ, barrier)
		total.Compute += b.Compute
		total.Send += b.Send
		total.Parse += b.Parse
		total.Sync += b.Sync
	}
	return total
}

// Fig10Breakdown reproduces Figure 10(1): normalized execution-time
// breakdown (SYN/PRS/CMP/SND) for Hama, Cyclops and CyclopsMT on every
// workload.
func Fig10Breakdown(o Options, w io.Writer) error {
	o = o.normalize()
	t := newTable("workload", "engine", "SYN%", "PRS%", "CMP%", "SND%", "total-vs-hama")
	for _, spec := range paperWorkloads() {
		hama, cyc, mt, err := runTriple(o, spec, partition.Hash{})
		if err != nil {
			return err
		}
		hb := modelBreakdown(hama)
		for _, r := range []RunResult{hama, cyc, mt} {
			b := modelBreakdown(r)
			tot := b.Total()
			t.addf("%s|%s|%.0f|%.0f|%.0f|%.0f|%.2f",
				spec.label(), r.Engine,
				100*b.Sync/tot, 100*b.Parse/tot, 100*b.Compute/tot, 100*b.Send/tot,
				tot/hb.Total())
		}
	}
	t.write(w)
	return nil
}

// fig10Pair runs Hama and Cyclops PageRank on gweb for the per-superstep
// series of Figures 10(2) and 10(3).
func fig10Pair(o Options) (hama, cyc RunResult, err error) {
	spec := workloadSpec{"PR", "gweb"}
	ctx, err := spec.prepare(o)
	if err != nil {
		return
	}
	if hama, err = RunWorkload("hama", "PR", ctx.graph, o.flat(), partition.Hash{}, ctx.params); err != nil {
		return
	}
	cyc, err = RunWorkload("cyclops", "PR", ctx.graph, o.flat(), partition.Hash{}, ctx.params)
	return
}

// Fig10Active reproduces Figure 10(2): active vertices per superstep.
func Fig10Active(o Options, w io.Writer) error {
	o = o.normalize()
	hama, cyc, err := fig10Pair(o)
	if err != nil {
		return err
	}
	t := newTable("superstep", "hama-active", "cyclops-active")
	steps := max2(len(hama.Trace.Steps), len(cyc.Trace.Steps))
	for s := 0; s < steps; s++ {
		t.addf("%d|%s|%s", s, stepActive(hama, s), stepActive(cyc, s))
	}
	t.write(w)
	return nil
}

// Fig10Messages reproduces Figure 10(3): messages per superstep.
func Fig10Messages(o Options, w io.Writer) error {
	o = o.normalize()
	hama, cyc, err := fig10Pair(o)
	if err != nil {
		return err
	}
	t := newTable("superstep", "hama-msgs", "cyclops-msgs")
	steps := max2(len(hama.Trace.Steps), len(cyc.Trace.Steps))
	for s := 0; s < steps; s++ {
		t.addf("%d|%s|%s", s, stepMsgs(hama, s), stepMsgs(cyc, s))
	}
	t.write(w)
	fmt.Fprintf(w, "\ntotals: hama=%d cyclops=%d (%.1fx fewer)\n",
		hama.Messages, cyc.Messages,
		float64(hama.Messages)/float64(max64(cyc.Messages, 1)))
	return nil
}

func stepActive(r RunResult, s int) string {
	if s < len(r.Trace.Steps) {
		return fmt.Sprint(r.Trace.Steps[s].Active)
	}
	return "-"
}

func stepMsgs(r RunResult, s int) string {
	if s < len(r.Trace.Steps) {
		return fmt.Sprint(r.Trace.Steps[s].Messages)
	}
	return "-"
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
