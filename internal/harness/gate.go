package harness

import (
	"fmt"
	"io"

	"cyclops/internal/partition"
)

// PagerankGate is the CI perf-regression workload: PageRank on gweb across
// Hama, flat Cyclops and CyclopsMT. It is deliberately small and fully
// deterministic — every number it prints (and every manifest a flight
// recorder captures alongside it) depends only on (scale, seed, cluster), so
// cyclops-report can diff a fresh recording against the committed
// BENCH_baseline.json and fail CI on any drift in supersteps, messages,
// replicas or model time.
func PagerankGate(o Options, w io.Writer) error {
	o = o.normalize()
	hama, cyc, mt, err := runTriple(o, workloadSpec{"PR", "gweb"}, partition.Hash{})
	if err != nil {
		return err
	}
	t := newTable("engine", "steps", "messages", "model-ms", "replication")
	for _, r := range []RunResult{hama, cyc, mt} {
		t.addf("%s|%d|%d|%.1f|%.2f",
			r.Engine, r.Supersteps, r.Messages, r.ModelMs, r.Replication)
	}
	t.write(w)
	fmt.Fprintf(w, "\nspeedup over hama: cyclops %.2fx, cyclopsmt %.2fx\n",
		speedup(hama.ModelMs, cyc.ModelMs), speedup(hama.ModelMs, mt.ModelMs))
	return nil
}
