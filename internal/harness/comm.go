package harness

import (
	"fmt"
	"io"

	"cyclops/internal/obs"
	"cyclops/internal/partition"
)

// Comm is the communication observatory: the per-worker counterpart of
// Table 4's traffic totals and Figure 10(3)'s messages-per-superstep series.
// It runs PageRank on gweb under all three engines with a traffic-matrix
// tracker and a skew profiler attached, prints each engine's worker×worker
// egress/ingress breakdown, and cross-checks the accumulated matrix against
// the transport's raw wire counters — they must agree exactly, message for
// message and byte for byte.
func Comm(o Options, w io.Writer) error {
	o = o.normalize()
	spec := workloadSpec{"PR", "gweb"}
	ctx, err := spec.prepare(o)
	if err != nil {
		return err
	}
	for _, engine := range []string{"hama", "cyclops", "powergraph"} {
		comm := obs.NewCommTracker()
		skew := obs.NewSkewProfiler(nil)
		p := ctx.params
		p.hooks = obs.Multi(o.Hooks, comm, skew)
		r, err := RunWorkload(engine, "PR", ctx.graph, o.flat(), partition.Hash{}, p)
		if err != nil {
			return err
		}

		cum := comm.Cumulative()
		fmt.Fprintf(w, "\n-- %s: %d supersteps, %d msgs / %d bytes on the wire\n",
			r.Engine, r.Supersteps, cum.TotalMessages(), cum.TotalBytes())
		if cum.TotalMessages() != r.Transport.Messages || cum.TotalBytes() != r.Transport.Bytes {
			return fmt.Errorf("comm: %s traffic matrix (%d msgs / %d B) does not sum to transport stats (%v)",
				r.Engine, cum.TotalMessages(), cum.TotalBytes(), r.Transport)
		}

		egress, ingress := cum.Egress(), cum.Ingress()
		eBytes, iBytes := cum.EgressBytes(), cum.IngressBytes()
		t := newTable("worker", "egress-msgs", "ingress-msgs", "egress-bytes", "ingress-bytes")
		for wk := 0; wk < cum.Workers; wk++ {
			t.addf("%d|%d|%d|%d|%d", wk, egress[wk], ingress[wk], eBytes[wk], iBytes[wk])
		}
		t.write(w)

		for _, rep := range skew.Reports() {
			fmt.Fprintln(w, rep.String())
		}
	}
	return nil
}
