// Package harness regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a named runner that builds the scaled
// synthetic datasets, runs the relevant engines, and prints the same rows or
// series the paper reports. The per-experiment index in DESIGN.md maps each
// runner to its paper artifact; cmd/cyclops-bench and bench_test.go are thin
// wrappers around this package.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/fault"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

// Options configures all experiments.
type Options struct {
	// Scale multiplies the default dataset sizes (1.0 ≈ laptop-sized
	// substitutions of the paper's graphs; see internal/gen).
	Scale float64
	// Seed drives all synthetic data.
	Seed int64
	// Machines is the simulated machine count (paper: 6).
	Machines int
	// WorkersPerMachine is the flat worker count per machine (paper: 8,
	// because the JVM capped useful threads at 8 per box, §6.3).
	WorkersPerMachine int
	// Eps is the PageRank convergence bound.
	Eps float64
	// Hooks, when set, is installed in every engine an experiment runs —
	// the harness's -verbose mode wires an obs.Tracer here so each
	// experiment's supersteps are narrated live instead of silently
	// spinning.
	Hooks obs.Hooks
	// TraceSink, when set, receives each finished run's per-superstep
	// trace (cyclops-bench -trace collects these into one CSV).
	TraceSink func(*metrics.Trace)
	// Audit turns on each engine's invariant auditor (replica consistency on
	// Cyclops, message conservation on Hama, mirror coherence on PowerGraph).
	// A violation fails the experiment with *obs.AuditError.
	Audit bool
	// FaultPlan overrides the deterministic fault schedule of the faults
	// experiment (nil derives one from Seed).
	FaultPlan *fault.Plan
}

// DefaultOptions mirrors the paper's testbed shape at laptop scale.
func DefaultOptions() Options {
	return Options{
		Scale:             1.0,
		Seed:              1,
		Machines:          6,
		WorkersPerMachine: 8,
		Eps:               1e-9,
	}
}

func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Machines <= 0 {
		o.Machines = d.Machines
	}
	if o.WorkersPerMachine <= 0 {
		o.WorkersPerMachine = d.WorkersPerMachine
	}
	if o.Eps <= 0 {
		o.Eps = d.Eps
	}
	return o
}

// flat returns the Hama / flat-Cyclops topology for these options.
func (o Options) flat() cluster.Config { return cluster.Flat(o.Machines, o.WorkersPerMachine) }

// mt returns the CyclopsMT topology (one worker per machine, W threads, the
// paper's best receiver count of 2 from Figure 12).
func (o Options) mt() cluster.Config { return cluster.MT(o.Machines, o.WorkersPerMachine, 2) }

// Experiment is a named, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

// Experiments lists all runnable artifacts in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig3", "Fig 3: BSP convergence asymmetry, redundant messages, error distribution", Fig3},
		{"fig4", "Fig 4: per-iteration communication cost of the four models", Fig4Models},
		{"fig9.1", "Fig 9(1): speedup over Hama, 48 workers, all workloads", Fig9Speedup},
		{"fig9.2", "Fig 9(2): scalability with 6..48 workers", Fig9Scalability},
		{"fig10.1", "Fig 10(1): execution time breakdown (SYN/PRS/CMP/SND)", Fig10Breakdown},
		{"fig10.2", "Fig 10(2): active vertices per superstep (PR, gweb)", Fig10Active},
		{"fig10.3", "Fig 10(3): messages per superstep (PR, gweb)", Fig10Messages},
		{"fig11.1", "Fig 11(1): replication factor vs #partitions (wiki)", Fig11PartitionsSweep},
		{"fig11.2", "Fig 11(2): replication factor per dataset (48 partitions)", Fig11Datasets},
		{"fig11.3", "Fig 11(3): speedups under Metis partitioning", Fig11Metis},
		{"fig12", "Fig 12: CyclopsMT configuration sweep (PR, gweb)", Fig12MTSweep},
		{"fig13.1", "Fig 13(1): graph ingress time breakdown", Fig13Ingress},
		{"fig13.2", "Fig 13(2): ALS scaling with graph size", Fig13ScaleSize},
		{"fig13.3", "Fig 13(3): L1-norm convergence over time", Fig13Convergence},
		{"table2", "Table 2: memory behaviour (PR, wiki)", Table2Memory},
		{"table3", "Table 3: message-passing microbenchmark", Table3Micro},
		{"table4", "Table 4: CyclopsMT vs PowerGraph (PR)", Table4PowerGraph},
		{"comm", "Comm observatory: per-worker traffic matrix and skew (PR, gweb)", Comm},
		{"faults", "Fault tolerance: checkpoint recovery under an injected fault plan (§3.6)", Faults},
		{"pagerank", "CI perf gate: PageRank on gweb across engines (deterministic)", PagerankGate},
		{"ablation.queue", "Ablation: locked global queue vs per-sender queues", AblationQueue},
		{"ablation.combiner", "Ablation: Hama message combiner on/off", AblationCombiner},
		{"ablation.activation", "Ablation: dynamic activation vs eager recompute", AblationActivation},
		{"ablation.detect", "Ablation: convergence detectors (global / local / proportion)", AblationDetectors},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(o Options, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n================ %s — %s ================\n", e.ID, e.Title)
		if err := e.Run(o, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// dataset builds a scaled dataset or fails loudly.
func dataset(o Options, name string) (*graph.Graph, gen.Meta, error) {
	return gen.Dataset(name, o.Scale, o.Seed)
}

// ---------------------------------------------------------------------------
// Uniform workload runner across engines.

// RunResult summarises one engine run for the comparison tables.
type RunResult struct {
	Engine      string
	Config      cluster.Config
	Trace       *metrics.Trace
	Wall        time.Duration
	ModelMs     float64
	Messages    int64
	Replication float64
	Supersteps  int
	// Values holds the scalar per-vertex results for PR and SSSP (nil for
	// CD and ALS, whose results are not scalar).
	Values []float64
	// Ingress carries Cyclops' replica-creation breakdown.
	Ingress cyclops.IngressStats
	// Transport holds the raw wire counters at the end of the run — the
	// ground truth the /comm traffic matrix must sum to exactly.
	Transport transport.Snapshot
	// HeapPeak, GCs and GCPause (ns) are filled when memory tracking is on.
	HeapPeak uint64
	GCs      uint32
	GCPause  uint64
}

// runParams tunes a workload run.
type runParams struct {
	maxSteps    int
	eps         float64
	cdIters     int
	alsSweeps   int
	alsUsers    int
	trackMemory bool
	forceGC     bool
	audit       bool
	onValues    func(step int, values []float64)
	hooks       obs.Hooks
	traceSink   func(*metrics.Trace)
}

func defaultParams(o Options) runParams {
	return runParams{
		maxSteps: 200, eps: o.Eps, cdIters: 20, alsSweeps: 3,
		hooks: o.Hooks, traceSink: o.TraceSink, audit: o.Audit,
	}
}

// memTracker samples heap usage at barriers.
type memTracker struct {
	active bool
	peak   uint64
	gcs0   uint32
	pause0 uint64
}

// newMemTracker starts heap tracking for one run. forceGC runs a full
// collection before the baseline sample so HeapPeak measures this run's
// allocations rather than the previous run's garbage — but the forced cycle
// itself perturbs GC telemetry (it inflates NumGC/PauseTotalNs ambient state
// and resets the pacer), so it is opt-in: only experiments that compare
// heap peaks across engines (Table 2) ask for it, and its cost lands before
// gcs0/pause0 are sampled so the run's own GC deltas stay clean.
func newMemTracker(active, forceGC bool) *memTracker {
	t := &memTracker{active: active}
	if active {
		if forceGC {
			runtime.GC()
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		t.gcs0 = ms.NumGC
		t.pause0 = ms.PauseTotalNs
	}
	return t
}

func (t *memTracker) sample() {
	if !t.active {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > t.peak {
		t.peak = ms.HeapAlloc
	}
}

func (t *memTracker) finish(r *RunResult) {
	if !t.active {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > t.peak {
		t.peak = ms.HeapAlloc
	}
	r.HeapPeak = t.peak
	r.GCs = ms.NumGC - t.gcs0
	r.GCPause = ms.PauseTotalNs - t.pause0
}

// RunWorkload runs one (engine, algorithm) pair over a dataset. engine is
// "hama", "cyclops" (flat or MT depending on cc) or "powergraph"; algo is
// the Table 1 pairing ("PR", "ALS", "CD", "SSSP").
func RunWorkload(engine, algo string, g *graph.Graph, cc cluster.Config,
	part partition.Partitioner, p runParams) (RunResult, error) {

	var r RunResult
	var err error
	switch engine {
	case "hama":
		r, err = runHama(algo, g, cc, part, p)
	case "cyclops":
		r, err = runCyclops(algo, g, cc, part, p)
	case "powergraph":
		r, err = runGAS(algo, g, cc, p)
	default:
		return RunResult{}, fmt.Errorf("harness: unknown engine %q", engine)
	}
	if err == nil && p.traceSink != nil && r.Trace != nil {
		p.traceSink(r.Trace)
	}
	return r, err
}

func finish(r *RunResult, wall time.Duration) {
	r.Wall = wall
	r.ModelMs = r.Trace.ModelTime() / 1e6
	r.Messages = r.Trace.TotalMessages()
	r.Supersteps = len(r.Trace.Steps)
}

// ---------------------------------------------------------------------------
// Table rendering helpers.

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// sortedKeys returns map keys in sorted order (stable output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// speedup guards against divide-by-zero when model times are tiny.
func speedup(base, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return base / x
}

// haltForPR builds the BSP global-error halt of Figure 2.
func haltForPR(n int, eps float64) aggregate.HaltFunc {
	return aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, n, eps)
}

// int64sToFloats widens CD labels for the scalar Values slot.
func int64sToFloats(in []int64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}
