package harness

import (
	"fmt"
	"io"
	"time"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

// ---------------------------------------------------------------------------
// Fig 11 — impact of the graph partitioning algorithm.

// Fig11PartitionsSweep reproduces Figure 11(1): the replication factor of
// the wiki substitution under hash and Metis-like partitioning as the
// partition count grows.
func Fig11PartitionsSweep(o Options, w io.Writer) error {
	o = o.normalize()
	g, _, err := dataset(o, "wiki")
	if err != nil {
		return err
	}
	t := newTable("partitions", "hash-replicas", "metis-replicas", "hash-cut%", "metis-cut%")
	for _, k := range []int{6, 12, 24, 48} {
		hashA, err := (partition.Hash{}).Partition(g, k)
		if err != nil {
			return err
		}
		metisA, err := (partition.Multilevel{Seed: o.Seed}).Partition(g, k)
		if err != nil {
			return err
		}
		edges := float64(g.NumEdges())
		t.addf("%d|%.2f|%.2f|%.0f|%.0f", k,
			hashA.ReplicationFactor(g), metisA.ReplicationFactor(g),
			100*float64(hashA.EdgeCut(g))/edges, 100*float64(metisA.EdgeCut(g))/edges)
	}
	t.write(w)
	fmt.Fprintf(w, "\n(mean out-degree %.2f bounds the hash curve from above)\n",
		float64(g.NumEdges())/float64(g.NumVertices()))
	return nil
}

// Fig11Datasets reproduces Figure 11(2): replication factor of every
// dataset at 48 partitions under both partitioners.
func Fig11Datasets(o Options, w io.Writer) error {
	o = o.normalize()
	k := o.flat().Workers()
	t := newTable("dataset", "hash-replicas", "metis-replicas")
	for _, name := range gen.Names() {
		g, _, err := dataset(o, name)
		if err != nil {
			return err
		}
		hashA, err := (partition.Hash{}).Partition(g, k)
		if err != nil {
			return err
		}
		metisA, err := (partition.Multilevel{Seed: o.Seed}).Partition(g, k)
		if err != nil {
			return err
		}
		t.addf("%s|%.2f|%.2f", name,
			hashA.ReplicationFactor(g), metisA.ReplicationFactor(g))
	}
	t.write(w)
	return nil
}

// Fig11Metis reproduces Figure 11(3): the Figure 9(1) speedup table under
// Metis-like partitioning (normalized against Hama under the same
// partition).
func Fig11Metis(o Options, w io.Writer) error {
	return fig9SpeedupWith(o.normalize(), w, partition.Multilevel{Seed: o.Seed})
}

// ---------------------------------------------------------------------------
// Fig 12 — CyclopsMT configuration sweep.

// Fig12MTSweep reproduces Figure 12: PageRank on gweb across the MxWxT/R
// configurations, with the modelled SYN/CMP/SND(+apply) phase split.
func Fig12MTSweep(o Options, w io.Writer) error {
	o = o.normalize()
	spec := workloadSpec{"PR", "gweb"}
	ctx, err := spec.prepare(o)
	if err != nil {
		return err
	}
	configs := []cluster.Config{
		cluster.Flat(o.Machines, 1),
		cluster.Flat(o.Machines, 2),
		cluster.Flat(o.Machines, 4),
		cluster.Flat(o.Machines, 8),
		cluster.MT(o.Machines, 1, 1),
		cluster.MT(o.Machines, 2, 1),
		cluster.MT(o.Machines, 4, 1),
		cluster.MT(o.Machines, 8, 1),
		cluster.MT(o.Machines, 8, 1),
		cluster.MT(o.Machines, 8, 2),
		cluster.MT(o.Machines, 8, 4),
		cluster.MT(o.Machines, 8, 8),
	}
	t := newTable("config", "SYN-ms", "CMP-ms", "SND+apply-ms", "total-ms", "replicas")
	best, bestTotal := "", 0.0
	for _, cc := range configs {
		r, err := RunWorkload("cyclops", "PR", ctx.graph, cc, partition.Hash{}, ctx.params)
		if err != nil {
			return err
		}
		b := modelBreakdown(r)
		t.addf("%s|%.1f|%.1f|%.1f|%.1f|%.2f", cc.String(),
			b.Sync/1e6, b.Compute/1e6, (b.Send+b.Parse)/1e6, b.Total()/1e6,
			r.Replication)
		if best == "" || b.Total() < bestTotal {
			best, bestTotal = cc.String(), b.Total()
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nbest configuration: %s (paper: 6x1x8/2)\n", best)
	return nil
}

// ---------------------------------------------------------------------------
// Fig 13 — ingress, size scaling, convergence speed.

// Fig13Ingress reproduces Figure 13(1): graph ingress breakdown into load
// (LD), replica creation (REP) and initialisation (INIT) for Hama and
// Cyclops.
func Fig13Ingress(o Options, w io.Writer) error {
	o = o.normalize()
	t := newTable("dataset", "LD-ms", "H-REP/INIT-ms", "C-REP/INIT-ms", "H-TOT", "C-TOT")
	for _, name := range gen.Names() {
		ldStart := time.Now()
		g, meta, err := dataset(o, name)
		if err != nil {
			return err
		}
		ld := time.Since(ldStart)

		// Hama ingress = partition + value init (no replicas).
		hStart := time.Now()
		he, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{},
			bsp.Config[float64, float64]{Cluster: o.flat()})
		if err != nil {
			return err
		}
		_ = he
		hInit := time.Since(hStart)

		// Cyclops ingress = partition + replica creation + init.
		cStart := time.Now()
		ce, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclops.Config[float64, float64]{Cluster: o.flat()})
		if err != nil {
			return err
		}
		cTot := time.Since(cStart)
		ing := ce.Ingress()
		_ = meta

		t.addf("%s|%.0f|0/%.0f|%.0f/%.0f|%.0f|%.0f", name,
			ms(ld), ms(hInit),
			ms(ing.Replication), ms(ing.Init),
			ms(ld)+ms(hInit), ms(ld)+ms(cTot))
	}
	t.write(w)
	fmt.Fprintln(w, "\n(REP is Cyclops-only; it is a one-time cost per loaded graph, §6.7)")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Fig13ScaleSize reproduces Figure 13(2): Hama vs CyclopsMT ALS execution
// time as the rating graph grows (the paper sweeps 0.34M → 20.2M edges and
// plots both systems).
func Fig13ScaleSize(o Options, w io.Writer) error {
	o = o.normalize()
	t := newTable("edges", "hama-model-ms", "cyclopsmt-model-ms", "speedup", "wall-H/MT-ms")
	for _, users := range []int{1250, 2500, 5000, 10000, 20000} {
		scaled := int(float64(users) * o.Scale)
		if scaled < 64 {
			scaled = 64
		}
		items := scaled / 10
		if items < 8 {
			items = 8
		}
		g := gen.Bipartite(scaled, items, 24, o.Seed)
		p := defaultParams(o)
		p.alsUsers = scaled
		hama, err := RunWorkload("hama", "ALS", g, o.flat(), partition.Hash{}, p)
		if err != nil {
			return err
		}
		mt, err := RunWorkload("cyclops", "ALS", g, o.mt(), partition.Hash{}, p)
		if err != nil {
			return err
		}
		t.addf("%d|%.1f|%.1f|%.2f|%.0f/%.0f", g.NumEdges(),
			hama.ModelMs, mt.ModelMs, speedup(hama.ModelMs, mt.ModelMs),
			float64(hama.Wall.Milliseconds()), float64(mt.Wall.Milliseconds()))
	}
	t.write(w)
	return nil
}

// Fig13Convergence reproduces Figure 13(3): L1-norm distance to the offline
// PageRank result as modelled time advances, for all three engines.
func Fig13Convergence(o Options, w io.Writer) error {
	o = o.normalize()
	g, _, err := dataset(o, "gweb")
	if err != nil {
		return err
	}
	ref := algorithms.PageRankRef(g, 200)

	type point struct {
		ms float64
		l1 float64
	}
	series := map[string][]point{}
	run := func(engine string, cc cluster.Config) error {
		p := defaultParams(o)
		p.maxSteps = 60
		var pts []point
		p.onValues = func(step int, values []float64) {
			pts = append(pts, point{l1: algorithms.L1Distance(values, ref)})
		}
		r, err := RunWorkload(engine, "PR", g, cc, partition.Hash{}, p)
		if err != nil {
			return err
		}
		var cum float64
		for i := range pts {
			if i < len(r.Trace.Steps) {
				cum += r.Trace.Steps[i].ModelNanos / 1e6
			}
			pts[i].ms = cum
		}
		series[r.Engine] = pts
		return nil
	}
	if err := run("hama", o.flat()); err != nil {
		return err
	}
	if err := run("cyclops", o.flat()); err != nil {
		return err
	}
	if err := run("cyclops", o.mt()); err != nil {
		return err
	}

	t := newTable("engine", "step", "model-ms", "L1-distance")
	for _, name := range sortedKeys(series) {
		for i, pt := range series[name] {
			if i%2 == 0 || i == len(series[name])-1 { // thin the series
				t.addf("%s|%d|%.1f|%.2e", name, i, pt.ms, pt.l1)
			}
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------------
// Tables 2–4.

// Table2Memory reproduces Table 2: peak heap and GC counts for PageRank on
// the wiki substitution under the three engine shapes. Runs share one Go
// heap, so runtime.GC precedes each run and the numbers are per-run deltas.
func Table2Memory(o Options, w io.Writer) error {
	o = o.normalize()
	spec := workloadSpec{"PR", "wiki"}
	ctx, err := spec.prepare(o)
	if err != nil {
		return err
	}
	ctx.params.trackMemory = true
	// Force a collection before each run so peak-heap-MB compares the
	// engines' live sets, not leftover garbage from the previous row. This
	// deliberately perturbs GC telemetry (extra cycle, pacer reset); runs
	// that only want GC counts/pauses leave forceGC off.
	ctx.params.forceGC = true
	t := newTable("config", "peak-heap-MB", "GCs", "GC-pause-ms", "replicas/vertex", "messages")
	for _, run := range []struct {
		engine string
		cc     cluster.Config
	}{
		{"hama", o.flat()},
		{"cyclops", o.flat()},
		{"cyclops", o.mt()},
	} {
		r, err := RunWorkload(run.engine, "PR", ctx.graph, run.cc, partition.Hash{}, ctx.params)
		if err != nil {
			return err
		}
		t.addf("%s/%s|%.1f|%d|%.2f|%.2f|%d", r.Engine, run.cc.String(),
			float64(r.HeapPeak)/(1<<20), r.GCs, float64(r.GCPause)/1e6,
			r.Replication, r.Messages)
	}
	t.write(w)
	fmt.Fprintln(w, "\n(Cyclops holds more replicas but allocates far fewer message objects,")
	fmt.Fprintln(w, " which is the paper's explanation for its lower GC pressure, §6.10)")
	return nil
}

// Table3Micro reproduces Table 3: the message-passing microbenchmark at
// three message volumes (paper: 5/25/50M; scaled by Options.Scale/10 here).
func Table3Micro(o Options, w io.Writer) error {
	o = o.normalize()
	t := newTable("messages", "hama-SND-ms", "hama-PRS-ms", "hama-TOT",
		"pg-SND-ms", "pg-PRS-ms", "pg-TOT", "cyclops-TOT")
	for _, base := range []int{5_000_000, 25_000_000, 50_000_000} {
		total := int(float64(base) * o.Scale / 10)
		if total < 100_000 {
			total = 100_000
		}
		const senders = 5
		h := transport.MicroHama(total, senders)
		p := transport.MicroPowerGraph(total, senders)
		c := transport.MicroCyclops(total, senders)
		for _, r := range []transport.MicroResult{h, p, c} {
			if err := transport.VerifyMicro(r); err != nil {
				return err
			}
		}
		t.addf("%d|%.1f|%.1f|%.1f|%.1f|%.1f|%.1f|%.1f", total,
			ms(h.Send), ms(h.Parse), ms(h.Total),
			ms(p.Send), ms(p.Parse), ms(p.Total),
			ms(c.Total))
	}
	t.write(w)
	return nil
}

// Table4PowerGraph reproduces Table 4: CyclopsMT vs the GAS engine on
// PageRank over the four web/social datasets, under both the default and
// the heuristic partitioners.
func Table4PowerGraph(o Options, w io.Writer) error {
	o = o.normalize()
	for _, heuristic := range []bool{false, true} {
		label := "hash-based partition (Cyclops: hash / PowerGraph: random vertex-cut)"
		var part partition.Partitioner = partition.Hash{}
		var cut gas.EdgePartitioner = gas.RandomVertexCut{}
		if heuristic {
			label = "heuristic partition (Cyclops: metis / PowerGraph: greedy vertex-cut)"
			part = partition.Multilevel{Seed: o.Seed}
			cut = gas.GreedyVertexCut{}
		}
		fmt.Fprintf(w, "\n%s\n", label)
		t := newTable("dataset", "cyclops-ms", "pg-ms", "cyc-replicas", "pg-replicas",
			"cyc-msgs", "pg-msgs", "msg/rep C:PG", "cyc-CMP%")
		for _, name := range []string{"amazon", "gweb", "ljournal", "wiki"} {
			g, _, err := dataset(o, name)
			if err != nil {
				return err
			}
			p := defaultParams(o)
			p.maxSteps = 30 // fixed-round comparison, as in §6.12
			p.eps = 0
			cycRes, err := RunWorkload("cyclops", "PR", g, o.mt(), part, p)
			if err != nil {
				return err
			}
			pgRes, err := runGASWithCut("PR", g, o.flat(), cut, p)
			if err != nil {
				return err
			}
			cb := modelBreakdown(cycRes)
			cycPerRep := perRep(cycRes.Messages, cycRes.Replication, g.NumVertices(), cycRes.Supersteps)
			pgPerRep := perRep(pgRes.Messages, pgRes.Replication, g.NumVertices(), pgRes.Supersteps)
			t.addf("%s|%.1f|%.1f|%.2f|%.2f|%d|%d|%.1f:%.1f|%.0f",
				name, cycRes.ModelMs, pgRes.ModelMs,
				cycRes.Replication, pgRes.Replication,
				cycRes.Messages, pgRes.Messages,
				cycPerRep, pgPerRep,
				100*cb.Compute/cb.Total())
		}
		t.write(w)
	}
	return nil
}

// perRep computes messages per replica per superstep.
func perRep(msgs int64, replication float64, n, steps int) float64 {
	replicas := replication * float64(n)
	if replicas <= 0 || steps == 0 {
		return 0
	}
	return float64(msgs) / replicas / float64(steps)
}
