package harness

import (
	"bytes"
	"strings"
	"testing"

	"cyclops/internal/partition"
)

// tiny returns options small enough that every experiment runs in seconds.
func tiny() Options {
	o := DefaultOptions()
	o.Scale = 0.05
	o.WorkersPerMachine = 2
	o.Machines = 3
	return o
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// One per paper artifact: 3 panels of fig3 are one runner; 13 total
	// figure/table artifacts map to 16 runners.
	want := []string{"fig3", "fig4", "fig9.1", "fig9.2", "fig10.1", "fig10.2", "fig10.3",
		"fig11.1", "fig11.2", "fig11.3", "fig12", "fig13.1", "fig13.2", "fig13.3",
		"table2", "table3", "table4"}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Lookup("fig9.1"); !ok {
		t.Error("Lookup failed for fig9.1")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup must fail for unknown ids")
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tiny(), &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunTripleShapes(t *testing.T) {
	o := tiny()
	hama, cyc, mt, err := runTriple(o, workloadSpec{"PR", "gweb"}, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline shape: Cyclops beats Hama on the cost model, and
	// CyclopsMT beats flat Cyclops; messages shrink dramatically.
	if cyc.ModelMs >= hama.ModelMs {
		t.Errorf("cyclops model %.2f !< hama model %.2f", cyc.ModelMs, hama.ModelMs)
	}
	if mt.ModelMs >= cyc.ModelMs {
		t.Errorf("cyclopsmt model %.2f !< cyclops model %.2f", mt.ModelMs, cyc.ModelMs)
	}
	if cyc.Messages*2 > hama.Messages {
		t.Errorf("cyclops messages %d not ≪ hama %d", cyc.Messages, hama.Messages)
	}
	// MT holds fewer replicas than flat Cyclops (fewer partitions).
	if mt.Replication >= cyc.Replication {
		t.Errorf("mt replication %.2f !< flat %.2f", mt.Replication, cyc.Replication)
	}
	// And the ranks agree (approximately: global vs local termination).
	for v := range hama.Values {
		if abs64(hama.Values[v]-cyc.Values[v]) > 1e-4 {
			t.Fatalf("rank mismatch at %d: %g vs %g", v, hama.Values[v], cyc.Values[v])
		}
	}
}

func TestAllWorkloadsAllEnginesAgree(t *testing.T) {
	o := tiny()
	for _, spec := range paperWorkloads() {
		hama, cyc, mt, err := runTriple(o, spec, partition.Hash{})
		if err != nil {
			t.Fatalf("%s: %v", spec.label(), err)
		}
		if hama.Values == nil {
			continue // ALS values are vectors, not exposed as scalars
		}
		for v := range hama.Values {
			if abs64(hama.Values[v]-cyc.Values[v]) > 1e-5 ||
				abs64(hama.Values[v]-mt.Values[v]) > 1e-5 {
				t.Fatalf("%s: value mismatch at %d: hama=%g cyclops=%g mt=%g",
					spec.label(), v, hama.Values[v], cyc.Values[v], mt.Values[v])
			}
		}
	}
}

func TestFig9TableMentionsAllWorkloads(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9Speedup(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"PR/amazon", "PR/wiki", "ALS/syn-gl", "CD/dblp", "SSSP/roadca"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig9 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable4ReportsBothPartitions(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4PowerGraph(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hash-based partition") || !strings.Contains(out, "heuristic partition") {
		t.Fatalf("table4 output incomplete:\n%s", out)
	}
}

func TestRunWorkloadRejectsUnknown(t *testing.T) {
	o := tiny()
	ctx, err := (workloadSpec{"PR", "gweb"}).prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload("quantum", "PR", ctx.graph, o.flat(), partition.Hash{}, ctx.params); err == nil {
		t.Error("unknown engine must error")
	}
	if _, err := RunWorkload("hama", "SAT", ctx.graph, o.flat(), partition.Hash{}, ctx.params); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if n.Scale != 1.0 || n.Machines != 6 || n.WorkersPerMachine != 8 || n.Eps != 1e-9 {
		t.Fatalf("normalize = %+v", n)
	}
	if n.flat().Workers() != 48 || n.mt().Workers() != 6 {
		t.Fatal("topology helpers wrong")
	}
}
