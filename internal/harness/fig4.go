package harness

import (
	"fmt"
	"io"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/graphlab"
	"cyclops/internal/partition"
)

// Fig4Models reproduces Figure 4 quantitatively: the per-iteration
// communication cost of the four computation models — Pregel/BSP message
// passing, GraphLab's bidirectional replicas with distributed locking,
// PowerGraph's 5-message GAS exchange, and Cyclops' single unidirectional
// sync — all running the same PageRank workload on the same graph to the
// same tolerance.
func Fig4Models(o Options, w io.Writer) error {
	o = o.normalize()
	g, _, err := dataset(o, "gweb")
	if err != nil {
		return err
	}
	n := g.NumVertices()
	eps := 1e-7 // loose enough for the async engine to settle quickly

	t := newTable("model", "replicas/vertex", "messages", "msg-detail", "per vertex-update")

	// Pregel/BSP: no replicas, one message per edge per superstep.
	be, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: eps},
		bsp.Config[float64, float64]{
			Cluster: o.flat(), MaxSupersteps: 100,
			Halt: aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, n, eps),
		})
	if err != nil {
		return err
	}
	btr, err := be.Run()
	if err != nil {
		return err
	}
	var bUpdates int64
	for _, s := range btr.Steps {
		bUpdates += s.Active
	}
	t.addf("pregel/bsp|0.00|%d|all data+activation|%.2f",
		btr.TotalMessages(), perUpdate(btr.TotalMessages(), bUpdates))

	// GraphLab: duplicate replicas, locks + sync + backward activation.
	le, err := graphlab.New[float64](g,
		algorithms.PageRankGraphLab{Eps: eps, N: n},
		graphlab.Config[float64]{
			Cluster:    o.flat(),
			MaxUpdates: int64(20000 * n),
		})
	if err != nil {
		return err
	}
	lst, err := le.Run()
	if err != nil {
		return err
	}
	t.addf("graphlab|%.2f|%d|lock %d + sync %d + act %d|%.2f",
		le.ReplicationFactor(), lst.Messages(),
		lst.LockMessages, lst.SyncMessages, lst.ActivationMsgs,
		perUpdate(lst.Messages(), lst.Updates))

	// PowerGraph: mirrors, five messages per mirror per iteration.
	ge, err := gas.New[algorithms.PRValue, float64](g,
		algorithms.NewPageRankGAS(g, 100, eps),
		gas.Config[algorithms.PRValue, float64]{Cluster: o.flat(), MaxSupersteps: 100})
	if err != nil {
		return err
	}
	gtr, err := ge.Run()
	if err != nil {
		return err
	}
	var gUpdates int64
	for _, s := range gtr.Steps {
		gUpdates += s.Active
	}
	t.addf("powergraph|%.2f|%d|gather 2 + apply 1 + scatter 2 per mirror|%.2f",
		ge.ReplicationFactor(), gtr.TotalMessages(), perUpdate(gtr.TotalMessages(), gUpdates))

	// Cyclops: read-only replicas, at most one unidirectional sync each.
	ce, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps},
		cyclops.Config[float64, float64]{Cluster: o.flat(), MaxSupersteps: 100,
			Partitioner: partition.Hash{}})
	if err != nil {
		return err
	}
	ctr, err := ce.Run()
	if err != nil {
		return err
	}
	var cUpdates int64
	for _, s := range ctr.Steps {
		cUpdates += s.Active
	}
	t.addf("cyclops|%.2f|%d|1 unidirectional sync+activate per replica|%.2f",
		ce.ReplicationFactor(), ctr.TotalMessages(), perUpdate(ctr.TotalMessages(), cUpdates))

	t.write(w)
	fmt.Fprintln(w, "\n(per vertex-update = total messages / vertex updates executed;")
	fmt.Fprintln(w, " the paper's Figure 4 walks through the same four patterns for one vertex)")
	return nil
}

func perUpdate(msgs, updates int64) float64 {
	if updates == 0 {
		return 0
	}
	return float64(msgs) / float64(updates)
}
