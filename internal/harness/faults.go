package harness

import (
	"fmt"
	"io"
	"os"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/checkpoint"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/fault"
	"cyclops/internal/gas"
	"cyclops/internal/graph"
	"cyclops/internal/obs"
	"cyclops/internal/partition"
)

// Faults is the §3.6 fault-tolerance experiment: each engine runs PageRank on
// amazon twice — a fault-free baseline and the same run under a deterministic
// fault plan with periodic checkpoints and recovery — and the final vertex
// values must match the baseline exactly. The table reports the recovery
// cost: replayed supersteps and the extra messages the replays sent, which is
// the price §3.6 argues is small because Cyclops checkpoints exclude replicas
// and messages.
//
// The plan comes from Options.FaultPlan when set (e.g. replaying a CI chaos
// failure from its uploaded plan) and is otherwise derived from Options.Seed;
// the same seed always yields the same schedule.
func Faults(o Options, w io.Writer) error {
	o = o.normalize()
	g, meta, err := dataset(o, "amazon")
	if err != nil {
		return err
	}
	cc := o.flat()

	plan := o.FaultPlan
	if plan == nil {
		p := fault.NewPlan(o.Seed, cc.Workers(), 2, 8, 3)
		plan = &p
	}
	fmt.Fprintf(w, "dataset %s: %d vertices, %d edges; %d workers\n",
		meta.Name, g.NumVertices(), g.NumEdges(), cc.Workers())
	fmt.Fprintf(w, "fault plan (seed %d):\n", plan.Seed)
	for _, f := range plan.Faults {
		fmt.Fprintf(w, "  %s\n", f)
	}

	tb := newTable("engine", "steps", "steps+replay", "recoveries", "replayed",
		"msgs", "msgs faulted", "extra msgs", "values")
	for _, engine := range []string{"hama", "cyclops", "powergraph"} {
		out, err := runFaulted(engine, g, cc, o.Eps, *plan)
		if err != nil {
			return fmt.Errorf("faults: %s: %w", engine, err)
		}
		equal := "EQUAL"
		if !out.equal {
			equal = "DIVERGED"
		}
		tb.addf("%s|%d|%d|%d|%d|%d|%d|%d|%s",
			engine, out.baseSteps, out.faultSteps, out.recoveries, out.replayed,
			out.baseMsgs, out.faultMsgs, out.faultMsgs-out.baseMsgs, equal)
		if !out.equal {
			return fmt.Errorf("faults: %s: recovered values diverged from the fault-free run", engine)
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "\nextra msgs = replayed supersteps' traffic; checkpoints hold only master")
	fmt.Fprintln(w, "state (replicas/mirrors are rebuilt from masters on recovery, §3.6)")
	return nil
}

// faultOutcome compares a faulted run against its fault-free baseline.
type faultOutcome struct {
	baseSteps, faultSteps int
	baseMsgs, faultMsgs   int64
	recoveries, replayed  int
	equal                 bool
}

// recoveryStats counts OnRecovery events.
type recoveryStats struct {
	obs.Nop
	recoveries, replayed int
}

func (r *recoveryStats) OnRecovery(e obs.RecoveryEvent) {
	r.recoveries++
	r.replayed += e.Replayed()
}

// runFaulted runs one engine's PageRank baseline and faulted runs and
// compares their final values exactly: recovery restores a barrier
// checkpoint and replays deterministic supersteps, so even floating-point
// results must match to the last bit.
func runFaulted(engine string, g *graph.Graph, cc cluster.Config, eps float64,
	plan fault.Plan) (faultOutcome, error) {

	dir, err := os.MkdirTemp("", "cyclops-faults-*")
	if err != nil {
		return faultOutcome{}, err
	}
	defer os.RemoveAll(dir)
	switch engine {
	case "hama":
		return faultsHama(g, cc, eps, plan, dir)
	case "cyclops":
		return faultsCyclops(g, cc, eps, plan, dir)
	case "powergraph":
		return faultsGAS(g, cc, eps, plan, dir)
	}
	return faultOutcome{}, fmt.Errorf("unknown engine %q", engine)
}

func faultsHama(g *graph.Graph, cc cluster.Config, eps float64, plan fault.Plan,
	dir string) (faultOutcome, error) {

	build := func(pl *fault.Plan, every int, rec *recoveryStats) (*bsp.Engine[float64, float64], error) {
		cfg := bsp.Config[float64, float64]{
			Cluster: cc, Partitioner: partition.Hash{}, MaxSupersteps: 200,
			Halt:  haltForPR(g.NumVertices(), eps),
			Equal: func(a, b float64) bool { return abs64(a-b) < eps },
		}
		if pl != nil {
			cfg.FaultPlan = pl
			cfg.CheckpointEvery = every
			cfg.Checkpoints = func(s bsp.State[float64, float64]) error {
				return checkpoint.Save(dir, s.Step, s)
			}
			cfg.Recover = func() (bsp.State[float64, float64], error) {
				s, _, err := checkpoint.LoadLatest[bsp.State[float64, float64]](dir)
				return s, err
			}
			cfg.Hooks = rec
		}
		return bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: eps}, cfg)
	}

	base, err := build(nil, 0, nil)
	if err != nil {
		return faultOutcome{}, err
	}
	baseTrace, err := base.Run()
	if err != nil {
		return faultOutcome{}, err
	}

	rec := &recoveryStats{}
	faulted, err := build(&plan, 2, rec)
	if err != nil {
		return faultOutcome{}, err
	}
	if err := checkpoint.Save(dir, 0, faulted.Snapshot()); err != nil {
		return faultOutcome{}, err
	}
	faultTrace, err := faulted.Run()
	if err != nil {
		return faultOutcome{}, err
	}
	return faultOutcome{
		baseSteps: len(baseTrace.Steps), faultSteps: len(faultTrace.Steps),
		baseMsgs: baseTrace.TotalMessages(), faultMsgs: faultTrace.TotalMessages(),
		recoveries: rec.recoveries, replayed: rec.replayed,
		equal: floatsEqual(base.Values(), faulted.Values()),
	}, nil
}

func faultsCyclops(g *graph.Graph, cc cluster.Config, eps float64, plan fault.Plan,
	dir string) (faultOutcome, error) {

	build := func(pl *fault.Plan, every int, rec *recoveryStats) (*cyclops.Engine[float64, float64], error) {
		cfg := cyclops.Config[float64, float64]{
			Cluster: cc, Partitioner: partition.Hash{}, MaxSupersteps: 200,
			Equal: func(a, b float64) bool { return abs64(a-b) < eps },
		}
		if pl != nil {
			cfg.FaultPlan = pl
			cfg.CheckpointEvery = every
			cfg.Checkpoints = func(s cyclops.State[float64, float64]) error {
				return checkpoint.Save(dir, s.Step, s)
			}
			cfg.Recover = func() (cyclops.State[float64, float64], error) {
				s, _, err := checkpoint.LoadLatest[cyclops.State[float64, float64]](dir)
				return s, err
			}
			cfg.Hooks = rec
		}
		return cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps}, cfg)
	}

	base, err := build(nil, 0, nil)
	if err != nil {
		return faultOutcome{}, err
	}
	baseTrace, err := base.Run()
	if err != nil {
		return faultOutcome{}, err
	}

	rec := &recoveryStats{}
	faulted, err := build(&plan, 2, rec)
	if err != nil {
		return faultOutcome{}, err
	}
	if err := checkpoint.Save(dir, 0, faulted.Snapshot()); err != nil {
		return faultOutcome{}, err
	}
	faultTrace, err := faulted.Run()
	if err != nil {
		return faultOutcome{}, err
	}
	return faultOutcome{
		baseSteps: len(baseTrace.Steps), faultSteps: len(faultTrace.Steps),
		baseMsgs: baseTrace.TotalMessages(), faultMsgs: faultTrace.TotalMessages(),
		recoveries: rec.recoveries, replayed: rec.replayed,
		equal: floatsEqual(base.Values(), faulted.Values()),
	}, nil
}

func faultsGAS(g *graph.Graph, cc cluster.Config, eps float64, plan fault.Plan,
	dir string) (faultOutcome, error) {

	maxSteps := 200
	build := func(pl *fault.Plan, every int, rec *recoveryStats) (*gas.Engine[algorithms.PRValue, float64], error) {
		cfg := gas.Config[algorithms.PRValue, float64]{
			Cluster: cc, Partitioner: gas.RandomVertexCut{}, MaxSupersteps: maxSteps,
		}
		if pl != nil {
			cfg.FaultPlan = pl
			cfg.CheckpointEvery = every
			cfg.Checkpoints = func(s gas.State[algorithms.PRValue]) error {
				return checkpoint.Save(dir, s.Step, s)
			}
			cfg.Recover = func() (gas.State[algorithms.PRValue], error) {
				s, _, err := checkpoint.LoadLatest[gas.State[algorithms.PRValue]](dir)
				return s, err
			}
			cfg.Hooks = rec
		}
		return gas.New[algorithms.PRValue, float64](g,
			algorithms.NewPageRankGAS(g, maxSteps, eps), cfg)
	}

	base, err := build(nil, 0, nil)
	if err != nil {
		return faultOutcome{}, err
	}
	baseTrace, err := base.Run()
	if err != nil {
		return faultOutcome{}, err
	}

	rec := &recoveryStats{}
	faulted, err := build(&plan, 2, rec)
	if err != nil {
		return faultOutcome{}, err
	}
	if err := checkpoint.Save(dir, 0, faulted.Snapshot()); err != nil {
		return faultOutcome{}, err
	}
	faultTrace, err := faulted.Run()
	if err != nil {
		return faultOutcome{}, err
	}
	return faultOutcome{
		baseSteps: len(baseTrace.Steps), faultSteps: len(faultTrace.Steps),
		baseMsgs: baseTrace.TotalMessages(), faultMsgs: faultTrace.TotalMessages(),
		recoveries: rec.recoveries, replayed: rec.replayed,
		equal: floatsEqual(algorithms.Ranks(base.Values()), algorithms.Ranks(faulted.Values())),
	}, nil
}

// floatsEqual is exact (bitwise) equality: recovery replays deterministic
// supersteps from an exact barrier snapshot, so approximate agreement would
// hide a broken restore path.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
