package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [6,5] → x = [1,1].
	a := []float64{4, 2, 2, 3}
	b := []float64{6, 5}
	x, err := CholeskySolve(a, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v, want [1 1]", x)
	}
}

func TestCholeskyIdentity(t *testing.T) {
	d := 5
	a := make([]float64, d*d)
	AddDiagonal(a, d, 1)
	b := []float64{1, 2, 3, 4, 5}
	want := []float64{1, 2, 3, 4, 5}
	x, err := CholeskySolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("zero matrix must be rejected")
	}
	a = []float64{-1, 0, 0, -1}
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("negative-definite matrix must be rejected")
	}
}

func TestCholeskyDimensionMismatch(t *testing.T) {
	if _, err := CholeskySolve([]float64{1, 2, 3}, []float64{1, 1}); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

// Property: for random SPD systems built as XᵀX + λI (exactly the ALS normal
// equations), the residual ‖Ax−b‖ must be tiny.
func TestCholeskySolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(8) + 1
		a := make([]float64, d*d)
		for k := 0; k < d+3; k++ {
			v := make([]float64, d)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			AddOuter(a, v)
		}
		AddDiagonal(a, d, 0.1)
		b := make([]float64, d)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		// Keep originals for residual check; the solver destroys its inputs.
		a0 := append([]float64(nil), a...)
		b0 := append([]float64(nil), b...)
		x, err := CholeskySolve(a, b)
		if err != nil {
			return false
		}
		ax := MatVec(a0, x)
		return L2Distance(ax, b0) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2}
	AddScaled(a, []float64{10, 10}, 0.5)
	if a[0] != 6 || a[1] != 7 {
		t.Fatalf("AddScaled = %v", a)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if d := L2Distance([]float64{0, 3}, []float64{4, 0}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2Distance = %g", d)
	}
}

func TestAddOuter(t *testing.T) {
	a := make([]float64, 4)
	AddOuter(a, []float64{2, 3})
	want := []float64{4, 6, 6, 9}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("AddOuter = %v", a)
		}
	}
}
