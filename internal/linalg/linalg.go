// Package linalg implements the small dense linear algebra needed by the ALS
// workload: each ALS update solves a d×d symmetric positive-definite system
// (XᵀX + λI)w = Xᵀr per vertex, with d the latent dimension (the paper uses
// the SYN-GL setup of Gonzalez et al., d≈20; we default to d=8 at laptop
// scale). Matrices are row-major []float64 slices to keep the hot path free
// of allocation.
package linalg

import (
	"errors"
	"math"
)

// ErrNotSPD reports that Cholesky factorisation hit a non-positive pivot,
// i.e. the matrix was not symmetric positive-definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// AddOuter accumulates A += v vᵀ for a d×d row-major matrix A.
func AddOuter(a []float64, v []float64) {
	d := len(v)
	for i := 0; i < d; i++ {
		vi := v[i]
		row := a[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] += vi * v[j]
		}
	}
}

// AddScaled accumulates dst += s·v.
func AddScaled(dst []float64, v []float64, s float64) {
	for i := range dst {
		dst[i] += s * v[i]
	}
}

// AddDiagonal accumulates A += s·I for a d×d row-major matrix.
func AddDiagonal(a []float64, d int, s float64) {
	for i := 0; i < d; i++ {
		a[i*d+i] += s
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// L2Distance returns ‖a−b‖₂.
func L2Distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CholeskySolve solves A x = b in place for a d×d symmetric positive-definite
// row-major A. A and b are overwritten (A with its Cholesky factor, b with
// the solution); the returned slice aliases b. Use on scratch buffers.
func CholeskySolve(a []float64, b []float64) ([]float64, error) {
	d := len(b)
	if len(a) != d*d {
		return nil, errors.New("linalg: dimension mismatch")
	}
	// Factor A = L Lᵀ, storing L in the lower triangle.
	for j := 0; j < d; j++ {
		diag := a[j*d+j]
		for k := 0; k < j; k++ {
			diag -= a[j*d+k] * a[j*d+k]
		}
		if diag <= 0 || math.IsNaN(diag) {
			return nil, ErrNotSPD
		}
		diag = math.Sqrt(diag)
		a[j*d+j] = diag
		for i := j + 1; i < d; i++ {
			s := a[i*d+j]
			for k := 0; k < j; k++ {
				s -= a[i*d+k] * a[j*d+k]
			}
			a[i*d+j] = s / diag
		}
	}
	// Forward solve L y = b.
	for i := 0; i < d; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*d+k] * b[k]
		}
		b[i] = s / a[i*d+i]
	}
	// Back solve Lᵀ x = y.
	for i := d - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < d; k++ {
			s -= a[k*d+i] * b[k]
		}
		b[i] = s / a[i*d+i]
	}
	return b, nil
}

// MatVec computes y = A x for a d×d row-major A into a fresh slice.
func MatVec(a []float64, x []float64) []float64 {
	d := len(x)
	y := make([]float64, d)
	for i := 0; i < d; i++ {
		y[i] = Dot(a[i*d:(i+1)*d], x)
	}
	return y
}
