package fault_test

// Span propagation under fault injection. A dropped connection loses the
// batch but must not orphan receiver spans: the round's LastDeliveries simply
// omits the dead sender, and after Heal + resend (what the engines do on
// recovery) the reconnected sender's deliveries resolve with the replayed
// step's span context — never a stale tag from before the fault. Both real
// transports (in-process and TCP loopback) honour the contract, and a full
// seeded fault plan replays to byte-identical delivery provenance.

import (
	"fmt"
	"strings"
	"testing"

	"cyclops/internal/fault"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// spanNetworks are the transports under test, by the Network selector.
var spanNetworks = []transport.Network{transport.InProcess, transport.TCPLoopback}

func newNet(t *testing.T, network transport.Network, n int) transport.Interface[int] {
	t.Helper()
	tr, err := transport.New[int](network, n, transport.PerSenderQueue, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// tagAll stamps every worker with the given step's span context, as the
// engine coordinators do between barriers.
func tagAll(tr transport.Interface[int], n, step int) {
	for w := 0; w < n; w++ {
		tr.Tag(w, span.Context{Run: 1, Step: int32(step), Worker: int32(w)})
	}
}

// roundTrip runs one complete round: the given sends, round markers from
// every worker, then a drain of `to`, returning its delivery provenance.
func roundTrip(tr transport.Interface[int], n, to int, send func()) []span.Delivery {
	send()
	for w := 0; w < n; w++ {
		tr.FinishRound(w)
	}
	tr.Drain(to)
	return tr.LastDeliveries(to)
}

func TestDropDoesNotOrphanReceiverSpans(t *testing.T) {
	for _, network := range spanNetworks {
		t.Run(network.String(), func(t *testing.T) {
			const n = 3
			inj := fault.Wrap(newNet(t, network, n), fault.Plan{Faults: []fault.Fault{
				{Kind: fault.Drop, Step: 1, Worker: 0, Peer: 1},
			}})

			// Step 0, fault-free: both senders' batches resolve to their
			// current span contexts.
			inj.BeginStep(0)
			tagAll(inj, n, 0)
			ds := roundTrip(inj, n, 1, func() {
				inj.Send(0, 1, []int{1, 2})
				inj.Send(2, 1, []int{3})
			})
			if len(ds) != 2 || ds[0].From != 0 || ds[1].From != 2 {
				t.Fatalf("clean round deliveries = %+v, want senders 0 and 2", ds)
			}
			for _, d := range ds {
				if !d.Ctx.Tagged() || d.Ctx.Step != 0 || d.Ctx.Worker != int32(d.From) {
					t.Fatalf("clean round carried wrong context: %+v", d)
				}
			}

			// Step 1: the 0→1 connection drops. The receiver's round resolves
			// with only the surviving sender — no phantom delivery, no
			// unmatched span context from the dead connection.
			inj.BeginStep(1)
			tagAll(inj, n, 1)
			ds = roundTrip(inj, n, 1, func() {
				inj.Send(0, 1, []int{4, 5})
				inj.Send(2, 1, []int{6})
			})
			if len(ds) != 1 || ds[0].From != 2 || ds[0].Ctx.Step != 1 {
				t.Fatalf("dropped round deliveries = %+v, want only sender 2 at step 1", ds)
			}
			if err := inj.Err(); err == nil || !transport.IsTransient(err) {
				t.Fatalf("drop must surface as a transient error, got %v", err)
			}

			// Heal and replay the superstep, as the recovery path does. The
			// reconnected sender resends under the replayed step's tag; its
			// deliveries resolve and carry that tag — not the pre-fault one.
			inj.Heal()
			inj.BeginStep(1)
			tagAll(inj, n, 1)
			ds = roundTrip(inj, n, 1, func() {
				inj.Send(0, 1, []int{4, 5})
				inj.Send(2, 1, []int{6})
			})
			if len(ds) != 2 {
				t.Fatalf("replayed round deliveries = %+v, want both senders back", ds)
			}
			for _, d := range ds {
				if !d.Ctx.Tagged() || d.Ctx.Step != 1 || d.Ctx.Worker != int32(d.From) {
					t.Fatalf("replayed round carried stale context: %+v", d)
				}
			}
			if ds[0].Msgs != 2 || ds[1].Msgs != 1 {
				t.Fatalf("replayed round message counts = %+v", ds)
			}
			if inj.Err() != nil {
				t.Fatalf("healed injector still errors: %v", inj.Err())
			}
		})
	}
}

// TestSpanProvenanceSeedReplayable drives a fixed send script through a full
// seeded fault plan twice, on each transport, and requires byte-identical
// delivery provenance: which batches arrived, from whom, under which span
// context. This is the property that makes chaos-run span records diffable.
func TestSpanProvenanceSeedReplayable(t *testing.T) {
	const (
		n     = 4
		steps = 5
		seed  = 42
	)
	script := func(network transport.Network) string {
		t.Helper()
		inj := fault.Wrap(newNet(t, network, n), fault.NewPlan(seed, n, 1, 3, 6))
		var log strings.Builder
		for step := 0; step < steps; step++ {
			inj.BeginStep(step)
			tagAll(inj, n, step)
			// Each worker sends to its two neighbours; payload size varies by
			// sender so corrupt-truncations change counts observably.
			for w := 0; w < n; w++ {
				inj.Send(w, (w+1)%n, make([]int, w+1))
				inj.Send(w, (w+2)%n, make([]int, 1))
			}
			for w := 0; w < n; w++ {
				inj.FinishRound(w)
			}
			for w := 0; w < n; w++ {
				inj.Drain(w)
				for _, d := range inj.LastDeliveries(w) {
					fmt.Fprintf(&log, "s%d w%d<-%d ctx{%d,%d,%d} x%d\n",
						step, w, d.From, d.Ctx.Run, d.Ctx.Step, d.Ctx.Worker, d.Msgs)
				}
			}
			if inj.Err() != nil {
				inj.Heal() // recover like the engines: heal, keep going
			}
		}
		return log.String()
	}

	for _, network := range spanNetworks {
		t.Run(network.String(), func(t *testing.T) {
			a, b := script(network), script(network)
			if a != b {
				t.Errorf("same-seed fault replays diverged:\nA:\n%s\nB:\n%s", a, b)
			}
			if a == "" {
				t.Error("no deliveries recorded — script never exercised the transport")
			}
		})
	}
}
