package fault_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cyclops/internal/fault"
	"cyclops/internal/transport"
)

func TestNewPlanDeterministicBytes(t *testing.T) {
	a := fault.NewPlan(42, 8, 2, 9, 5)
	b := fault.NewPlan(42, 8, 2, 9, 5)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", a.Encode(), b.Encode())
	}
	c := fault.NewPlan(43, 8, 2, 9, 5)
	if bytes.Equal(a.Encode(), c.Encode()) {
		t.Fatal("different seeds produced the same plan")
	}
}

func TestNewPlanBounds(t *testing.T) {
	p := fault.NewPlan(7, 4, 2, 6, 50)
	if len(p.Faults) != 50 {
		t.Fatalf("want 50 faults, got %d", len(p.Faults))
	}
	for _, f := range p.Faults {
		if f.Step < 2 || f.Step > 6 {
			t.Fatalf("fault step %d outside [2,6]: %s", f.Step, f)
		}
		if f.Worker < 0 || f.Worker >= 4 {
			t.Fatalf("fault worker %d outside [0,4): %s", f.Worker, f)
		}
		switch f.Kind {
		case fault.Drop, fault.Corrupt:
			if f.Peer == f.Worker || f.Peer < 0 || f.Peer >= 4 {
				t.Fatalf("bad peer in %s", f)
			}
		case fault.Stall, fault.Slow:
			if f.DelayMs <= 0 {
				t.Fatalf("zero delay in %s", f)
			}
		}
	}
	// Degenerate arguments yield an empty (but valid) plan.
	if p := fault.NewPlan(1, 0, 2, 6, 3); len(p.Faults) != 0 {
		t.Fatalf("0 workers must yield an empty plan, got %v", p)
	}
}

func TestEncodeLoadRoundTrip(t *testing.T) {
	p := fault.NewPlan(11, 6, 2, 8, 4)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, p.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fault.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Encode(), got.Encode()) {
		t.Fatalf("round trip changed the plan:\n%s\n%s", p.Encode(), got.Encode())
	}
}

func TestLoadRejectsUnknownKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path,
		[]byte(`{"seed":1,"faults":[{"kind":"meteor","step":2,"worker":0,"peer":-1}]}`),
		0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fault.Load(path); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}

func TestErrorIsTransient(t *testing.T) {
	err := &fault.Error{Fault: fault.Fault{Kind: fault.Crash, Step: 3, Worker: 1, Peer: -1}}
	if !transport.IsTransient(err) {
		t.Fatal("injected faults must classify as transient")
	}
}

// newLocal builds the in-process transport the injector tests wrap.
func newLocal(t *testing.T, n int) transport.Interface[int] {
	t.Helper()
	tr, err := transport.New[int](transport.InProcess, n, transport.PerSenderQueue, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func drainCount(tr transport.Interface[int], to int) int {
	total := 0
	for _, b := range tr.Drain(to) {
		total += len(b)
	}
	return total
}

func TestInjectorCrashDropsAllSends(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 3), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Crash, Step: 1, Worker: 0, Peer: -1},
	}})

	inj.BeginStep(0)
	inj.Send(0, 1, []int{1, 2})
	if inj.Err() != nil {
		t.Fatal("no fault armed at step 0")
	}
	if got := drainCount(inj, 1); got != 2 {
		t.Fatalf("step 0 delivery: %d msgs, want 2", got)
	}

	inj.BeginStep(1)
	inj.Send(0, 1, []int{1, 2})
	inj.Send(0, 2, []int{3})
	inj.Send(1, 2, []int{4}) // another worker is unaffected
	if got := drainCount(inj, 1); got != 0 {
		t.Fatalf("crashed worker's batch arrived: %d msgs", got)
	}
	if got := drainCount(inj, 2); got != 1 {
		t.Fatalf("healthy worker's batch: %d msgs, want 1", got)
	}
	if err := inj.Err(); err == nil || !transport.IsTransient(err) {
		t.Fatalf("crash must report a transient error, got %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", inj.Fired())
	}
}

func TestInjectorDropIsConnectionScoped(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 3), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Drop, Step: 0, Worker: 0, Peer: 1},
	}})
	inj.BeginStep(0)
	inj.Send(0, 1, []int{1})
	inj.Send(0, 2, []int{2})
	if got := drainCount(inj, 1); got != 0 {
		t.Fatalf("dropped connection delivered %d msgs", got)
	}
	if got := drainCount(inj, 2); got != 1 {
		t.Fatalf("unaffected connection: %d msgs, want 1", got)
	}
}

func TestInjectorCorruptTruncates(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 2), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Corrupt, Step: 0, Worker: 0, Peer: 1},
	}})
	inj.BeginStep(0)
	inj.Send(0, 1, []int{1, 2, 3, 4})
	if got := drainCount(inj, 1); got != 2 {
		t.Fatalf("corrupt batch: %d msgs, want 2 (truncated half)", got)
	}
	if err := inj.Err(); err == nil || !transport.IsTransient(err) {
		t.Fatalf("corrupt must report a transient error, got %v", err)
	}
}

func TestInjectorFaultsAreOneShot(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 2), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Drop, Step: 2, Worker: 0, Peer: 1},
	}})
	inj.BeginStep(2)
	inj.Send(0, 1, []int{1})
	if got := drainCount(inj, 1); got != 0 {
		t.Fatal("fault did not fire")
	}
	inj.Heal()
	if inj.Err() != nil {
		t.Fatal("Heal must clear the injected error")
	}
	// The replayed superstep (same number, after recovery) sees no fault.
	inj.BeginStep(2)
	inj.Send(0, 1, []int{1})
	if got := drainCount(inj, 1); got != 1 {
		t.Fatalf("replayed step re-dropped the batch: %d msgs, want 1", got)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", inj.Fired())
	}
}

func TestInjectorHealDisarmsCurrentStep(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 2), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Crash, Step: 0, Worker: 0, Peer: -1},
	}})
	inj.BeginStep(0)
	// Heal before any send: restore-path traffic (e.g. re-sent pending
	// messages) must not be afflicted by the fault being recovered from.
	inj.Heal()
	inj.Send(0, 1, []int{1})
	if got := drainCount(inj, 1); got != 1 {
		t.Fatalf("restore-path send dropped: %d msgs, want 1", got)
	}
}

func TestInjectorSlowPerturbsTimingOnly(t *testing.T) {
	inj := fault.Wrap(newLocal(t, 2), fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slow, Step: 0, Worker: 0, Peer: -1, DelayMs: 1},
	}})
	inj.BeginStep(0)
	inj.Send(0, 1, []int{1})
	if err := inj.Err(); err != nil {
		t.Fatalf("slow must not report an error, got %v", err)
	}
	if got := drainCount(inj, 1); got != 1 {
		t.Fatalf("slow dropped the batch: %d msgs", got)
	}
}
