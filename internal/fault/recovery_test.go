package fault_test

// End-to-end recovery tests: kill a worker at superstep k, recover from the
// latest barrier checkpoint, and require the recovered run's final vertex
// values to equal the fault-free run bit-for-bit on every engine (§3.6).
//
// CHAOS_SEED varies the seeded chaos plan: CI's chaos matrix sets it per job,
// and replaying a red seed locally is `CHAOS_SEED=n go test ./internal/fault/`.

import (
	"math"
	"os"
	"strconv"
	"testing"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/checkpoint"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/fault"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/obs"
)

const (
	recoveryEps   = 1e-8
	recoverySteps = 100
)

// chaosSeed reads the CI chaos matrix's seed; unset means 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return n
}

func chaosGraph() *graph.Graph {
	return gen.PowerLaw(400, 5, 3)
}

// killPlan crashes worker 0 at superstep k and nothing else.
func killPlan(k int) fault.Plan {
	return fault.Plan{Seed: int64(k), Faults: []fault.Fault{
		{Kind: fault.Crash, Step: k, Worker: 0, Peer: -1},
	}}
}

// recoveryCounter counts OnRecovery events so tests can assert the fault
// actually fired and was recovered from, not silently skipped.
type recoveryCounter struct {
	obs.Nop
	recoveries int
}

func (r *recoveryCounter) OnRecovery(obs.RecoveryEvent) { r.recoveries++ }

func requireEqualValues(t *testing.T, base, got []float64) {
	t.Helper()
	if len(base) != len(got) {
		t.Fatalf("value lengths differ: %d vs %d", len(base), len(got))
	}
	for v := range base {
		if base[v] != got[v] {
			t.Fatalf("vertex %d diverged after recovery: %g vs %g", v, base[v], got[v])
		}
	}
}

// Each runXxx runs PageRank on the engine; with a nil plan it is the
// fault-free baseline, otherwise the plan is injected with checkpoints every
// 2 supersteps (plus a step-0 baseline) and recovery from the latest one.

func runCyclops(t *testing.T, g *graph.Graph, plan *fault.Plan, rec *recoveryCounter) []float64 {
	t.Helper()
	cfg := cyclops.Config[float64, float64]{
		Cluster: cluster.Flat(2, 2), MaxSupersteps: recoverySteps,
		Equal: func(a, b float64) bool { return math.Abs(a-b) < recoveryEps },
	}
	if plan != nil {
		dir := t.TempDir()
		cfg.FaultPlan = plan
		cfg.CheckpointEvery = 2
		cfg.Checkpoints = func(s cyclops.State[float64, float64]) error {
			return checkpoint.Save(dir, s.Step, s)
		}
		cfg.Recover = func() (cyclops.State[float64, float64], error) {
			s, _, err := checkpoint.LoadLatest[cyclops.State[float64, float64]](dir)
			return s, err
		}
		cfg.Hooks = rec
		e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: recoveryEps}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkpoint.Save(dir, 0, e.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Values()
	}
	e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: recoveryEps}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Values()
}

func runBSP(t *testing.T, g *graph.Graph, plan *fault.Plan, rec *recoveryCounter) []float64 {
	t.Helper()
	cfg := bsp.Config[float64, float64]{
		Cluster: cluster.Flat(2, 2), MaxSupersteps: recoverySteps,
		Halt:  aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, g.NumVertices(), recoveryEps),
		Equal: func(a, b float64) bool { return math.Abs(a-b) < recoveryEps },
	}
	if plan != nil {
		dir := t.TempDir()
		cfg.FaultPlan = plan
		cfg.CheckpointEvery = 2
		cfg.Checkpoints = func(s bsp.State[float64, float64]) error {
			return checkpoint.Save(dir, s.Step, s)
		}
		cfg.Recover = func() (bsp.State[float64, float64], error) {
			s, _, err := checkpoint.LoadLatest[bsp.State[float64, float64]](dir)
			return s, err
		}
		cfg.Hooks = rec
		e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: recoveryEps}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkpoint.Save(dir, 0, e.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Values()
	}
	e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: recoveryEps}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Values()
}

func runGAS(t *testing.T, g *graph.Graph, plan *fault.Plan, rec *recoveryCounter) []float64 {
	t.Helper()
	cfg := gas.Config[algorithms.PRValue, float64]{
		Cluster: cluster.Flat(2, 2), Partitioner: gas.RandomVertexCut{},
		MaxSupersteps: recoverySteps,
	}
	if plan != nil {
		dir := t.TempDir()
		cfg.FaultPlan = plan
		cfg.CheckpointEvery = 2
		cfg.Checkpoints = func(s gas.State[algorithms.PRValue]) error {
			return checkpoint.Save(dir, s.Step, s)
		}
		cfg.Recover = func() (gas.State[algorithms.PRValue], error) {
			s, _, err := checkpoint.LoadLatest[gas.State[algorithms.PRValue]](dir)
			return s, err
		}
		cfg.Hooks = rec
		e, err := gas.New[algorithms.PRValue, float64](g,
			algorithms.NewPageRankGAS(g, recoverySteps, recoveryEps), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkpoint.Save(dir, 0, e.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return algorithms.Ranks(e.Values())
	}
	e, err := gas.New[algorithms.PRValue, float64](g,
		algorithms.NewPageRankGAS(g, recoverySteps, recoveryEps), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return algorithms.Ranks(e.Values())
}

var engines = []struct {
	name string
	run  func(*testing.T, *graph.Graph, *fault.Plan, *recoveryCounter) []float64
}{
	{"cyclops", runCyclops},
	{"bsp", runBSP},
	{"gas", runGAS},
}

func TestKillAtStepKRecoversExactly(t *testing.T) {
	g := chaosGraph()
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			base := eng.run(t, g, nil, nil)
			for _, k := range []int{1, 2, 3} {
				k := k
				t.Run("k="+strconv.Itoa(k), func(t *testing.T) {
					plan := killPlan(k)
					rec := &recoveryCounter{}
					got := eng.run(t, g, &plan, rec)
					if rec.recoveries == 0 {
						t.Fatal("crash never fired: recovery path untested")
					}
					requireEqualValues(t, base, got)
				})
			}
		})
	}
}

// TestChaosSeededRecovery runs the full seed-derived plan (the same shape the
// CLIs arm via -fault-seed) against every engine. Not every scheduled fault
// necessarily fires — a drop on an idle connection costs nothing — but the
// final values must always equal the fault-free run.
func TestChaosSeededRecovery(t *testing.T) {
	g := chaosGraph()
	seed := chaosSeed(t)
	plan := fault.NewPlan(seed, cluster.Flat(2, 2).Workers(), 1, 6, 3)
	t.Logf("chaos plan (seed %d):\n%s", seed, plan.Encode())
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			base := eng.run(t, g, nil, nil)
			rec := &recoveryCounter{}
			got := eng.run(t, g, &plan, rec)
			t.Logf("%s: %d recoveries", eng.name, rec.recoveries)
			requireEqualValues(t, base, got)
		})
	}
}
