package fault

import (
	"sync"
	"time"

	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// Injector applies a Plan at the transport boundary. It wraps any
// transport.Interface: sends afflicted by an armed fault are dropped,
// truncated, or delayed, and the fault is reported as a typed transient
// error through Err — indistinguishable, from the engines' side, from a real
// dropped connection on a hardened RPC transport.
//
// The engine arms the injector at the top of each superstep with BeginStep.
// Each fault fires at most once: after recovery the engine replays the same
// superstep number, and BeginStep must not re-arm a consumed fault or the
// run would crash forever. Heal clears the injected error once the engine
// has restored a checkpoint.
type Injector[M any] struct {
	inner transport.Interface[M]

	mu    sync.Mutex
	plan  Plan
	spent []bool  // spent[i]: plan.Faults[i] already fired
	armed []Fault // faults live for the current superstep
	err   error
	fired int
}

// Wrap builds an Injector over tr following plan. Until BeginStep arms a
// superstep, the wrapper is transparent.
func Wrap[M any](tr transport.Interface[M], plan Plan) *Injector[M] {
	plan.Faults = append([]Fault(nil), plan.Faults...)
	plan.normalize()
	return &Injector[M]{
		inner: tr,
		plan:  plan,
		spent: make([]bool, len(plan.Faults)),
	}
}

// BeginStep arms the faults scheduled for superstep `step`, consuming them:
// a replayed superstep (after recovery) sees no faults the first run already
// absorbed. Call it from the engine's coordinator before the superstep's
// first send.
func (j *Injector[M]) BeginStep(step int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.armed = j.armed[:0]
	for i, f := range j.plan.Faults {
		if f.Step == step && !j.spent[i] {
			j.spent[i] = true
			j.armed = append(j.armed, f)
			j.fired++
		}
	}
}

// Heal clears the injected transient error and disarms the current step's
// faults — the engine calls it before restoring a checkpoint, so the
// restore's own transport traffic (re-sent pending messages, replica
// refreshes) is not afflicted by the fault being recovered from. Real
// transport errors underneath are untouched unless transient.
func (j *Injector[M]) Heal() {
	j.mu.Lock()
	j.err = nil
	j.armed = j.armed[:0]
	j.mu.Unlock()
	if c, ok := j.inner.(interface{ ClearErr() }); ok {
		c.ClearErr()
	}
}

// Fired reports how many scheduled faults have fired so far.
func (j *Injector[M]) Fired() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fired
}

// Send applies the armed faults to the batch, then forwards what survives.
func (j *Injector[M]) Send(from, to int, batch []M) {
	j.mu.Lock()
	delay := time.Duration(0)
	drop := false
	for _, f := range j.armed {
		if f.Worker != from {
			continue
		}
		switch f.Kind {
		case Crash:
			// The worker is dead for this superstep: nothing it sends
			// arrives anywhere.
			drop = true
			j.setErrLocked(f)
		case Drop:
			if f.Peer == to {
				drop = true
				j.setErrLocked(f)
			}
		case Corrupt:
			if f.Peer == to && len(batch) > 0 {
				// A mid-frame reset: the head of the batch decoded, the
				// tail is gone. (Truncation, not mutation — a zero-valued
				// message would be a forged well-formed message, which is
				// a different failure class than a torn frame.)
				batch = batch[:len(batch)/2]
				j.setErrLocked(f)
			}
		case Stall:
			delay = max(delay, time.Duration(f.DelayMs)*time.Millisecond)
			j.setErrLocked(f)
		case Slow:
			delay = max(delay, time.Duration(f.DelayMs)*time.Millisecond)
		}
	}
	j.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop || len(batch) == 0 {
		return
	}
	j.inner.Send(from, to, batch)
}

func (j *Injector[M]) setErrLocked(f Fault) {
	if j.err == nil {
		j.err = &Error{Fault: f}
	}
}

// Err reports the injected fault if one fired, else the inner transport's
// error.
func (j *Injector[M]) Err() error {
	j.mu.Lock()
	err := j.err
	j.mu.Unlock()
	if err != nil {
		return err
	}
	return j.inner.Err()
}

// FinishRound forwards the round marker unconditionally: a crashed process's
// sockets still deliver their FINs, so barriers complete and the engines
// observe the fault at the barrier instead of hanging in Drain.
func (j *Injector[M]) FinishRound(from int) { j.inner.FinishRound(from) }

// NumEndpoints implements transport.Interface.
func (j *Injector[M]) NumEndpoints() int { return j.inner.NumEndpoints() }

// Drain implements transport.Interface.
func (j *Injector[M]) Drain(to int) [][]M { return j.inner.Drain(to) }

// Stats implements transport.Interface.
func (j *Injector[M]) Stats() *transport.Stats { return j.inner.Stats() }

// Matrix implements transport.Interface.
func (j *Injector[M]) Matrix() *transport.Matrix { return j.inner.Matrix() }

// Close implements transport.Interface.
func (j *Injector[M]) Close() error { return j.inner.Close() }

// Tag implements transport.Interface: span tags pass through untouched, so a
// batch that survives injection still carries its sender's causal context —
// and a batch resent after Heal carries the replayed superstep's context,
// which is what keeps receiver spans from orphaning across a recovery.
func (j *Injector[M]) Tag(from int, sc span.Context) { j.inner.Tag(from, sc) }

// LastDeliveries implements transport.Interface.
func (j *Injector[M]) LastDeliveries(to int) []span.Delivery { return j.inner.LastDeliveries(to) }

// SerializeNanos implements transport.Interface.
func (j *Injector[M]) SerializeNanos(from int) int64 { return j.inner.SerializeNanos(from) }

// Unwrap exposes the wrapped transport (checkpoint Restore needs the real
// in-process transport underneath).
func (j *Injector[M]) Unwrap() transport.Interface[M] { return j.inner }

var _ transport.Interface[int] = (*Injector[int])(nil)
