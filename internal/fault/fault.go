// Package fault injects deterministic, seed-driven failures into a run so
// the engines' §3.6 recovery path can be exercised, tested, and replayed.
//
// A Plan is a schedule of Faults — worker crashes at a given superstep,
// dropped or stalled connections, corrupted frames, slow peers — derived
// entirely from a seed: the same seed always yields the same schedule, byte
// for byte (Encode is canonical), so a chaos failure recorded in CI is
// replayed locally from nothing but its seed, and two runs of the same plan
// are diffable by the flight recorder.
//
// The Injector wraps any transport.Interface and applies the plan at the
// transport boundary. Faults surface as typed transient errors through Err,
// exactly like a hardened RPC transport reports a dropped connection, so the
// engines cannot tell injected chaos from the real thing.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// Kind names a failure mode.
type Kind string

const (
	// Crash kills a worker for one superstep: all of its outgoing batches
	// vanish and the fault is reported as a transient transport error. Round
	// markers still flow — a crashed process's TCP FINs still arrive — so
	// barriers complete and the fault is observed at the barrier, not as a
	// hang.
	Crash Kind = "crash"
	// Drop severs one direction of one connection for a superstep: batches
	// from Worker to Peer are discarded and a transient error is reported.
	Drop Kind = "drop"
	// Corrupt truncates every batch from Worker to Peer for a superstep
	// (the tail of the frame is lost, as after a mid-frame connection
	// reset) and reports a transient error.
	Corrupt Kind = "corrupt"
	// Stall delays Worker's sends by DelayMs and reports a transient error,
	// modelling a peer stuck past its deadlines.
	Stall Kind = "stall"
	// Slow delays Worker's sends by DelayMs without reporting an error:
	// a degraded-but-correct peer. It perturbs timing only, never results.
	Slow Kind = "slow"
)

// Fault is one scheduled failure.
type Fault struct {
	// Kind is the failure mode.
	Kind Kind `json:"kind"`
	// Step is the superstep (0-based) at which the fault fires.
	Step int `json:"step"`
	// Worker is the afflicted worker.
	Worker int `json:"worker"`
	// Peer is the remote end for connection-scoped faults (Drop, Corrupt);
	// -1 when the fault afflicts all of Worker's connections.
	Peer int `json:"peer"`
	// DelayMs is the injected latency for Stall and Slow.
	DelayMs int `json:"delay_ms,omitempty"`
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s@step=%d worker=%d", f.Kind, f.Step, f.Worker)
	if f.Peer >= 0 {
		s += fmt.Sprintf(" peer=%d", f.Peer)
	}
	if f.DelayMs > 0 {
		s += fmt.Sprintf(" delay=%dms", f.DelayMs)
	}
	return s
}

// Error is the typed transient failure the Injector reports through Err when
// a fault fires. It satisfies transport.IsTransient, so a checkpointed
// engine recovers from it like from any real transient transport fault.
type Error struct {
	Fault Fault
}

func (e *Error) Error() string { return "fault injected: " + e.Fault.String() }

// Transient marks every injected fault recoverable.
func (e *Error) Transient() bool { return true }

// Plan is a deterministic fault schedule.
type Plan struct {
	// Seed is the seed the schedule was derived from (0 for hand-written
	// plans).
	Seed int64 `json:"seed"`
	// Faults is the schedule, sorted by (Step, Worker, Kind).
	Faults []Fault `json:"faults"`
}

// NewPlan derives a fault schedule from a seed: n faults over workers
// [0,workers) and supersteps [minStep, maxStep]. The same arguments always
// produce the same plan; Encode renders it byte-identically.
func NewPlan(seed int64, workers, minStep, maxStep, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Crash, Drop, Corrupt, Stall, Slow}
	p := Plan{Seed: seed}
	if workers < 1 || maxStep < minStep || n < 1 {
		return p
	}
	for i := 0; i < n; i++ {
		f := Fault{
			Kind:   kinds[rng.Intn(len(kinds))],
			Step:   minStep + rng.Intn(maxStep-minStep+1),
			Worker: rng.Intn(workers),
			Peer:   -1,
		}
		switch f.Kind {
		case Drop, Corrupt:
			if workers > 1 {
				f.Peer = rng.Intn(workers - 1)
				if f.Peer >= f.Worker {
					f.Peer++
				}
			}
		case Stall, Slow:
			f.DelayMs = 1 + rng.Intn(20)
		}
		p.Faults = append(p.Faults, f)
	}
	p.normalize()
	return p
}

// normalize sorts the schedule into its canonical order so Encode is
// byte-identical for equal plans however they were built.
func (p *Plan) normalize() {
	sort.SliceStable(p.Faults, func(i, j int) bool {
		a, b := p.Faults[i], p.Faults[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Kind < b.Kind
	})
}

// Encode renders the plan as canonical JSON: same plan ⇒ same bytes, so two
// schedules are comparable with bytes.Equal and diffable as flight-recorder
// artifacts.
func (p Plan) Encode() []byte {
	q := p
	q.Faults = append([]Fault(nil), p.Faults...)
	q.normalize()
	b, err := json.MarshalIndent(q, "", "  ")
	if err != nil {
		// A Plan holds only ints and strings; this cannot fail.
		panic(fmt.Sprintf("fault: encode: %v", err))
	}
	return append(b, '\n')
}

// Load reads a plan written by Encode (or by hand) from path.
func Load(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("fault: load plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("fault: parse plan %s: %w", path, err)
	}
	for i := range p.Faults {
		switch k := p.Faults[i].Kind; k {
		case Crash, Drop, Corrupt, Stall, Slow:
		default:
			return Plan{}, fmt.Errorf("fault: plan %s: unknown kind %q", path, k)
		}
	}
	p.normalize()
	return p, nil
}

func (p Plan) String() string {
	if len(p.Faults) == 0 {
		return fmt.Sprintf("plan(seed=%d, empty)", p.Seed)
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return fmt.Sprintf("plan(seed=%d, %s)", p.Seed, strings.Join(parts, "; "))
}
