package cyclops

// One benchmark per table and figure of the paper's evaluation (§6), each
// delegating to the harness runner indexed in DESIGN.md, plus engine-level
// micro-benchmarks with allocation reporting. The macro benchmarks run the
// full experiment per iteration; set CYCLOPS_BENCH_SCALE to trade fidelity
// for speed (default 0.1 ≈ a few thousand vertices per dataset).

import (
	"io"
	"os"
	"strconv"
	"testing"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	cyclopseng "cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/graphlab"
	"cyclops/internal/harness"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Scale = 0.1
	if s := os.Getenv("CYCLOPS_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			o.Scale = v
		}
	}
	return o
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact -------------------------------------

func BenchmarkFig3ConvergencePerSuperstep(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4Models(b *testing.B)                  { benchExperiment(b, "fig4") }
func BenchmarkFig9Speedup(b *testing.B)                 { benchExperiment(b, "fig9.1") }
func BenchmarkFig9Scalability(b *testing.B)             { benchExperiment(b, "fig9.2") }
func BenchmarkFig10Breakdown(b *testing.B)              { benchExperiment(b, "fig10.1") }
func BenchmarkFig10ActiveVertices(b *testing.B)         { benchExperiment(b, "fig10.2") }
func BenchmarkFig10Messages(b *testing.B)               { benchExperiment(b, "fig10.3") }
func BenchmarkFig11Replication(b *testing.B)            { benchExperiment(b, "fig11.1") }
func BenchmarkFig11Datasets(b *testing.B)               { benchExperiment(b, "fig11.2") }
func BenchmarkFig11MetisSpeedup(b *testing.B)           { benchExperiment(b, "fig11.3") }
func BenchmarkFig12MTConfigs(b *testing.B)              { benchExperiment(b, "fig12") }
func BenchmarkFig13Ingress(b *testing.B)                { benchExperiment(b, "fig13.1") }
func BenchmarkFig13ScaleWithSize(b *testing.B)          { benchExperiment(b, "fig13.2") }
func BenchmarkFig13Convergence(b *testing.B)            { benchExperiment(b, "fig13.3") }
func BenchmarkTable2Memory(b *testing.B)                { benchExperiment(b, "table2") }
func BenchmarkTable3MessagePassing(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4PowerGraph(b *testing.B)            { benchExperiment(b, "table4") }

// --- engine micro-benchmarks ----------------------------------------------

// benchGraph is shared across engine benches (amazon-like power-law).
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.Dataset("amazon", 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkHamaPageRank measures the BSP engine end to end: 10 fixed
// PageRank iterations per op.
func BenchmarkHamaPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{},
			bsp.Config[float64, float64]{Cluster: cluster.Flat(6, 8), MaxSupersteps: 11})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCyclopsPageRank measures the flat Cyclops engine: 10 iterations.
func BenchmarkCyclopsPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := cyclopseng.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclopseng.Config[float64, float64]{Cluster: cluster.Flat(6, 8), MaxSupersteps: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCyclopsMTPageRank measures the hierarchical engine (6×1×8/2).
func BenchmarkCyclopsMTPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := cyclopseng.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclopseng.Config[float64, float64]{Cluster: cluster.MT(6, 8, 2), MaxSupersteps: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGASPageRank measures the PowerGraph-like engine: 10 iterations.
func BenchmarkGASPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := gas.New[algorithms.PRValue, float64](g,
			algorithms.NewPageRankGAS(g, 10, 0),
			gas.Config[algorithms.PRValue, float64]{Cluster: cluster.Flat(6, 1), MaxSupersteps: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCyclopsIngress isolates replica creation (Figure 13(1)'s REP).
func BenchmarkCyclopsIngress(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cyclopseng.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclopseng.Config[float64, float64]{Cluster: cluster.Flat(6, 8)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultilevelPartition measures the Metis-like partitioner.
func BenchmarkMultilevelPartition(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (partition.Multilevel{Seed: 1}).Partition(g, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphLabPageRank measures the async comparator engine.
func BenchmarkGraphLabPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := graphlab.New[float64](g,
			algorithms.PageRankGraphLab{Eps: 1e-6, N: g.NumVertices()},
			graphlab.Config[float64]{Cluster: cluster.Flat(6, 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 3's three message paths as Go benchmarks (1M messages, 5 senders).
func BenchmarkMicroHamaPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := transport.MicroHama(1_000_000, 5)
		if err := transport.VerifyMicro(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroPowerGraphPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := transport.MicroPowerGraph(1_000_000, 5)
		if err := transport.VerifyMicro(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroCyclopsPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := transport.MicroCyclops(1_000_000, 5)
		if err := transport.VerifyMicro(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- cost-model calibration -------------------------------------------------
// These measure the per-operation costs the metrics.CostModel constants are
// calibrated against. Run with -bench 'Calibrate' -benchtime 100x and divide
// ns/op by the op count in each name.

// BenchmarkCalibrateComputeUnit scans edges through the CSR the way a
// compute phase does (ComputeUnit ≈ ns per edge).
func BenchmarkCalibrateComputeUnit(b *testing.B) {
	g := benchGraph(b)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumVertices(); v++ {
			ws := g.InWeights(graph.ID(v))
			var sum float64
			for _, w := range ws {
				sum += w
			}
			sink += sum
		}
	}
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(g.NumEdges()), "ns/edge")
}

// BenchmarkCalibrateSendMsg measures batching + enqueueing through the
// per-sender transport (SendMsg ≈ ns per message).
func BenchmarkCalibrateSendMsg(b *testing.B) {
	const n = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := transport.NewLocal[[2]float64](2, transport.PerSenderQueue, nil)
		batch := make([][2]float64, 0, 1024)
		for m := 0; m < n; m++ {
			batch = append(batch, [2]float64{float64(m), 1})
			if len(batch) == cap(batch) {
				tr.Send(0, 1, batch)
				batch = make([][2]float64, 0, 1024)
			}
		}
		tr.Send(0, 1, batch)
		tr.Drain(1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/msg")
}

// BenchmarkCalibrateParseMsg measures the queue-and-parse receive path
// (ParseMsg ≈ ns per message): drain, then group per destination vertex.
func BenchmarkCalibrateParseMsg(b *testing.B) {
	const n = 100_000
	const vertices = 4096
	inbox := make([][]float64, vertices)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := transport.NewLocal[[2]float64](2, transport.GlobalQueue, nil)
		batch := make([][2]float64, n)
		for m := range batch {
			batch[m] = [2]float64{float64(m % vertices), 1}
		}
		tr.Send(0, 1, batch)
		b.StartTimer()
		for _, bb := range tr.Drain(1) {
			for _, env := range bb {
				v := int(env[0])
				inbox[v] = append(inbox[v], env[1])
			}
		}
		b.StopTimer()
		for v := range inbox {
			inbox[v] = inbox[v][:0]
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/msg")
}

// BenchmarkCalibrateApplyMsg measures Cyclops' direct replica update
// (ApplyMsg ≈ ns per message): no locks, no grouping.
func BenchmarkCalibrateApplyMsg(b *testing.B) {
	const n = 100_000
	view := make([]float64, 4096)
	batch := make([][2]float64, n)
	for m := range batch {
		batch[m] = [2]float64{float64(m % len(view)), float64(m)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range batch {
			view[int(m[0])] = m[1]
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/msg")
}
